//! State-machine replication on top of atomic broadcast (paper §1,
//! \[33\]).
//!
//! The whole point of atomic broadcast is that replicas executing the
//! committed command sequence deterministically end up in the same
//! state. [`Replica`] consumes a node's [`NodeEvent::Committed`] stream
//! and applies each command to a [`StateMachine`]; [`KvStore`] is a
//! small replicated key-value machine used by the examples and tests.

use crate::events::NodeEvent;
use icc_crypto::{hash_parts, Hash256};
use icc_types::Command;
use std::collections::BTreeMap;
use std::fmt;

/// A deterministic state machine driven by committed commands.
pub trait StateMachine {
    /// Applies one committed command.
    fn apply(&mut self, command: &Command);

    /// A digest of the current state, used to check replica agreement.
    fn state_digest(&self) -> Hash256;
}

/// Wraps a state machine and feeds it a node's committed blocks.
#[derive(Debug)]
pub struct Replica<S> {
    machine: S,
    applied_commands: u64,
    applied_blocks: u64,
}

impl<S: StateMachine> Replica<S> {
    /// A replica around a fresh state machine.
    pub fn new(machine: S) -> Replica<S> {
        Replica {
            machine,
            applied_commands: 0,
            applied_blocks: 0,
        }
    }

    /// Feeds one node event; commits are applied, other events ignored.
    pub fn on_event(&mut self, event: &NodeEvent) {
        if let NodeEvent::Committed { block } = event {
            for cmd in block.block().payload().commands() {
                self.machine.apply(cmd);
                self.applied_commands += 1;
            }
            self.applied_blocks += 1;
        }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &S {
        &self.machine
    }

    /// Commands applied so far.
    pub fn applied_commands(&self) -> u64 {
        self.applied_commands
    }

    /// Blocks applied so far.
    pub fn applied_blocks(&self) -> u64 {
        self.applied_blocks
    }

    /// Digest of the current replicated state.
    pub fn state_digest(&self) -> Hash256 {
        self.machine.state_digest()
    }
}

/// A replicated key-value store.
///
/// Commands are UTF-8 lines: `set <key> <value>` or `del <key>`.
/// Anything else is ignored (applications must tolerate junk commands a
/// corrupt proposer slips into a block).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<String, String>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> KvStore {
        KvStore::default()
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Builds a `set` command.
    pub fn set_command(key: &str, value: &str) -> Command {
        Command::new(format!("set {key} {value}").into_bytes())
    }

    /// Builds a `del` command.
    pub fn del_command(key: &str) -> Command {
        Command::new(format!("del {key}").into_bytes())
    }
}

impl fmt::Display for KvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KvStore({} keys)", self.map.len())
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, command: &Command) {
        let Ok(text) = std::str::from_utf8(command.bytes()) else {
            return;
        };
        let mut parts = text.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("set"), Some(key), Some(value)) => {
                self.map.insert(key.to_string(), value.to_string());
            }
            (Some("del"), Some(key), _) => {
                self.map.remove(key);
            }
            _ => {}
        }
    }

    fn state_digest(&self) -> Hash256 {
        let mut parts: Vec<Vec<u8>> = Vec::with_capacity(self.map.len() * 2);
        for (k, v) in &self.map {
            parts.push(k.clone().into_bytes());
            parts.push(v.clone().into_bytes());
        }
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        hash_parts("kv-state", &refs)
    }
}

/// A replicated token ledger with a conservation invariant.
///
/// Commands are UTF-8 lines: `mint <account> <amount>` or
/// `xfer <from> <to> <amount>`. A transfer that would overdraw is
/// rejected deterministically (every replica rejects it identically),
/// so the sum of balances always equals the sum of successful mints —
/// the invariant the property tests check across Byzantine runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Ledger {
    balances: BTreeMap<String, u64>,
    minted: u64,
    rejected: u64,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// An account's balance (zero if absent).
    pub fn balance(&self, account: &str) -> u64 {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// Total tokens ever minted.
    pub fn total_minted(&self) -> u64 {
        self.minted
    }

    /// Sum of all balances — must always equal [`total_minted`].
    ///
    /// [`total_minted`]: Ledger::total_minted
    pub fn total_supply(&self) -> u64 {
        self.balances.values().sum()
    }

    /// Commands rejected deterministically (overdrafts, junk).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Builds a `mint` command.
    pub fn mint_command(account: &str, amount: u64) -> Command {
        Command::new(format!("mint {account} {amount}").into_bytes())
    }

    /// Builds a `xfer` command.
    pub fn transfer_command(from: &str, to: &str, amount: u64) -> Command {
        Command::new(format!("xfer {from} {to} {amount}").into_bytes())
    }
}

impl fmt::Display for Ledger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ledger({} accounts, supply {})",
            self.balances.len(),
            self.total_supply()
        )
    }
}

impl StateMachine for Ledger {
    fn apply(&mut self, command: &Command) {
        let Ok(text) = std::str::from_utf8(command.bytes()) else {
            self.rejected += 1;
            return;
        };
        let parts: Vec<&str> = text.split(' ').collect();
        match parts.as_slice() {
            ["mint", account, amount] => {
                // Reject mints that would overflow the total supply —
                // a panic here would crash every replica identically,
                // but a deterministic rejection is the sane semantic.
                match amount.parse::<u64>() {
                    Ok(v) if self.minted.checked_add(v).is_some() => {
                        *self.balances.entry((*account).to_string()).or_insert(0) += v;
                        self.minted += v;
                    }
                    _ => self.rejected += 1,
                }
            }
            ["xfer", from, to, amount] => match amount.parse::<u64>() {
                Ok(v) if self.balance(from) >= v && from != to => {
                    *self.balances.get_mut(*from).expect("checked balance") -= v;
                    *self.balances.entry((*to).to_string()).or_insert(0) += v;
                }
                _ => self.rejected += 1,
            },
            _ => self.rejected += 1,
        }
    }

    fn state_digest(&self) -> Hash256 {
        let mut parts: Vec<Vec<u8>> = Vec::with_capacity(self.balances.len() * 2 + 1);
        parts.push(self.minted.to_le_bytes().to_vec());
        for (k, v) in &self.balances {
            parts.push(k.clone().into_bytes());
            parts.push(v.to_le_bytes().to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        hash_parts("ledger-state", &refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icc_types::block::{Block, Payload};
    use icc_types::{NodeIndex, Round};

    fn commit_event(cmds: Vec<Command>) -> NodeEvent {
        NodeEvent::Committed {
            block: Block::new(
                Round::new(1),
                NodeIndex::new(0),
                icc_crypto::Hash256::ZERO,
                Payload::from_commands(cmds),
            )
            .into_hashed(),
        }
    }

    #[test]
    fn kv_semantics() {
        let mut kv = KvStore::new();
        kv.apply(&KvStore::set_command("a", "1"));
        kv.apply(&KvStore::set_command("b", "two words"));
        assert_eq!(kv.get("a"), Some("1"));
        assert_eq!(kv.get("b"), Some("two words"));
        kv.apply(&KvStore::set_command("a", "2"));
        assert_eq!(kv.get("a"), Some("2"));
        kv.apply(&KvStore::del_command("a"));
        assert_eq!(kv.get("a"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn junk_commands_ignored() {
        let mut kv = KvStore::new();
        kv.apply(&Command::new(vec![0xff, 0xfe]));
        kv.apply(&Command::new(b"frobnicate x".to_vec()));
        kv.apply(&Command::new(b"set onlykey".to_vec()));
        assert!(kv.is_empty());
    }

    #[test]
    fn digest_tracks_state_not_history() {
        let mut a = KvStore::new();
        a.apply(&KvStore::set_command("x", "1"));
        a.apply(&KvStore::set_command("x", "2"));
        let mut b = KvStore::new();
        b.apply(&KvStore::set_command("x", "2"));
        assert_eq!(a.state_digest(), b.state_digest());
        b.apply(&KvStore::set_command("y", "3"));
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn replica_applies_commits_in_order() {
        let mut r = Replica::new(KvStore::new());
        r.on_event(&commit_event(vec![
            KvStore::set_command("k", "first"),
            KvStore::set_command("k", "second"),
        ]));
        assert_eq!(r.machine().get("k"), Some("second"));
        assert_eq!(r.applied_commands(), 2);
        assert_eq!(r.applied_blocks(), 1);
        // Non-commit events are ignored.
        r.on_event(&NodeEvent::Proposed {
            round: Round::new(2),
            hash: icc_crypto::Hash256::ZERO,
        });
        assert_eq!(r.applied_blocks(), 1);
    }

    #[test]
    fn ledger_mint_transfer_and_overdraft() {
        let mut l = Ledger::new();
        l.apply(&Ledger::mint_command("alice", 100));
        l.apply(&Ledger::transfer_command("alice", "bob", 30));
        assert_eq!(l.balance("alice"), 70);
        assert_eq!(l.balance("bob"), 30);
        // Overdraft, self-transfer and junk all rejected, supply intact.
        l.apply(&Ledger::transfer_command("bob", "carol", 31));
        l.apply(&Ledger::transfer_command("alice", "alice", 1));
        l.apply(&Command::new(b"xfer alice bob lots".to_vec()));
        l.apply(&Command::new(vec![0xff]));
        assert_eq!(l.rejected(), 4);
        assert_eq!(l.total_supply(), l.total_minted());
        assert_eq!(l.total_supply(), 100);
    }

    #[test]
    fn ledger_mint_overflow_rejected_not_panicking() {
        let mut l = Ledger::new();
        l.apply(&Ledger::mint_command("a", u64::MAX));
        l.apply(&Ledger::mint_command("a", 1)); // would overflow: rejected
        assert_eq!(l.rejected(), 1);
        assert_eq!(l.total_minted(), u64::MAX);
        assert_eq!(l.total_supply(), l.total_minted());
    }

    #[test]
    fn ledger_digest_covers_mint_history() {
        // Same balances via different mint history must differ (minted
        // total is part of the replicated state).
        let mut a = Ledger::new();
        a.apply(&Ledger::mint_command("x", 10));
        let mut b = Ledger::new();
        b.apply(&Ledger::mint_command("x", 5));
        b.apply(&Ledger::mint_command("x", 5));
        assert_eq!(a.total_supply(), b.total_supply());
        assert_eq!(a.state_digest(), b.state_digest(), "minted totals equal");
        b.apply(&Ledger::mint_command("x", 1));
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn same_commits_same_digest() {
        let events = vec![
            commit_event(vec![KvStore::set_command("a", "1")]),
            commit_event(vec![
                KvStore::set_command("b", "2"),
                KvStore::del_command("a"),
            ]),
        ];
        let mut r1 = Replica::new(KvStore::new());
        let mut r2 = Replica::new(KvStore::new());
        for e in &events {
            r1.on_event(e);
            r2.on_event(e);
        }
        assert_eq!(r1.state_digest(), r2.state_digest());
    }
}
