//! The message pool (paper §3.1, §3.4).
//!
//! Each party holds a pool of all artifacts it has received (including
//! from itself); nothing is ever deleted (§3.1 — an optional
//! [`Pool::purge_below`] implements the optimization the paper mentions
//! but elides). The pool classifies each block as *authentic*, *valid*,
//! *notarized* or *finalized* **for this party** exactly per §3.4:
//!
//! * **authentic** — an authenticator (valid `S_auth` signature by the
//!   claimed proposer) is present;
//! * **valid** — authentic, and its parent is a *notarized* block of the
//!   previous round in this pool (`root` for round 1); validity is a
//!   property of the whole ancestor chain;
//! * **notarized** — valid with a verified `(n−t)` notarization present;
//! * **finalized** — valid with a verified `(n−t)` finalization present.
//!
//! All signatures are verified on insertion; artifacts that fail
//! verification are dropped (and counted). Beacon shares are the one
//! exception: they can only be verified once the *previous* beacon value
//! is known, so they are held and verified at combine time.

use crate::keys::PublicSetup;
use icc_crypto::beacon::{beacon_sign_message, BeaconValue};
use icc_crypto::threshold::ThresholdSigShare;
use icc_crypto::Hash256;
use icc_types::block::HashedBlock;
use icc_types::messages::{
    domains, BlockRef, ConsensusMessage, Finalization, FinalizationShare, Notarization,
    NotarizationShare,
};
use icc_types::Round;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// The per-party artifact pool and block classifier.
#[derive(Debug)]
pub struct Pool {
    setup: Arc<PublicSetup>,
    blocks: HashMap<Hash256, HashedBlock>,
    by_round: BTreeMap<Round, Vec<Hash256>>,
    authentic: HashSet<Hash256>,
    valid: HashSet<Hash256>,
    notarized: HashSet<Hash256>,
    finalized: HashSet<Hash256>,
    authenticators: HashMap<Hash256, icc_crypto::sig::Signature>,
    notarizations: HashMap<Hash256, Notarization>,
    finalizations: HashMap<Hash256, Finalization>,
    notarization_shares: HashMap<Hash256, BTreeMap<u32, NotarizationShare>>,
    finalization_shares: HashMap<Hash256, BTreeMap<u32, FinalizationShare>>,
    /// Round index over finalization-share targets, so the Fig. 2 scan
    /// is O(active rounds), not O(history).
    finalization_share_rounds: BTreeMap<Round, HashSet<Hash256>>,
    /// Aggregates whose block is not yet valid, awaiting promotion.
    pending_notarized: HashSet<Hash256>,
    pending_finalized: HashSet<Hash256>,
    refs: HashMap<Hash256, BlockRef>,
    beacon_shares: BTreeMap<Round, BTreeMap<u32, ThresholdSigShare>>,
    beacons: BTreeMap<Round, BeaconValue>,
    /// Blocks that are authentic but not yet valid (awaiting ancestors).
    pending_validity: HashSet<Hash256>,
    /// Finalized blocks indexed by round (P2 guarantees at most one).
    finalized_by_round: BTreeMap<Round, Hash256>,
    rejected: u64,
}

impl Pool {
    /// An empty pool for a party of the given setup. The genesis block
    /// is pre-inserted as valid, notarized and finalized (§3.4: `root`
    /// serves as its own authenticator, notarization and finalization),
    /// and `R_0` as the round-0 beacon.
    pub fn new(setup: Arc<PublicSetup>) -> Pool {
        let genesis = setup.genesis.clone();
        let ghash = genesis.hash();
        let mut pool = Pool {
            setup,
            blocks: HashMap::new(),
            by_round: BTreeMap::new(),
            authentic: HashSet::new(),
            authenticators: HashMap::new(),
            valid: HashSet::new(),
            notarized: HashSet::new(),
            finalized: HashSet::new(),
            notarizations: HashMap::new(),
            finalizations: HashMap::new(),
            notarization_shares: HashMap::new(),
            finalization_shares: HashMap::new(),
            finalization_share_rounds: BTreeMap::new(),
            pending_notarized: HashSet::new(),
            pending_finalized: HashSet::new(),
            refs: HashMap::new(),
            beacon_shares: BTreeMap::new(),
            beacons: BTreeMap::new(),
            pending_validity: HashSet::new(),
            finalized_by_round: BTreeMap::new(),
            rejected: 0,
        };
        pool.beacons.insert(Round::GENESIS, pool.setup.genesis_beacon);
        pool.blocks.insert(ghash, genesis);
        pool.by_round.insert(Round::GENESIS, vec![ghash]);
        pool.authentic.insert(ghash);
        pool.valid.insert(ghash);
        pool.notarized.insert(ghash);
        pool.finalized.insert(ghash);
        pool.finalized_by_round.insert(Round::GENESIS, ghash);
        pool
    }

    /// Number of artifacts rejected for failing verification.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Inserts an incoming message's artifacts, verifying signatures.
    /// Returns `true` if anything new and valid entered the pool.
    pub fn insert(&mut self, msg: &ConsensusMessage) -> bool {
        let changed = match msg {
            ConsensusMessage::Proposal(p) => {
                let mut changed = false;
                if let Some(n) = &p.parent_notarization {
                    changed |= self.insert_notarization(n.clone());
                }
                changed |= self.insert_block(p.block.clone(), &p.authenticator);
                changed
            }
            ConsensusMessage::NotarizationShare(s) => self.insert_notarization_share(*s),
            ConsensusMessage::Notarization(n) => self.insert_notarization(n.clone()),
            ConsensusMessage::FinalizationShare(s) => self.insert_finalization_share(*s),
            ConsensusMessage::Finalization(f) => self.insert_finalization(f.clone()),
            ConsensusMessage::BeaconShare(b) => {
                // Held unverified until the previous beacon is known.
                self.beacon_shares
                    .entry(b.round)
                    .or_default()
                    .insert(b.share.signer, b.share)
                    .is_none()
            }
        };
        if changed {
            self.recheck_validity();
        }
        changed
    }

    fn insert_block(
        &mut self,
        block: HashedBlock,
        authenticator: &icc_crypto::sig::Signature,
    ) -> bool {
        let hash = block.hash();
        if self.authentic.contains(&hash) {
            return false;
        }
        let block_ref = BlockRef::of_hashed(&block);
        if block.round().is_genesis() {
            self.rejected += 1;
            return false;
        }
        let Some(pk) = self.setup.auth_keys.get(block.proposer().as_usize()) else {
            self.rejected += 1;
            return false;
        };
        if !pk.verify(domains::AUTH, &block_ref.sign_bytes(), authenticator) {
            self.rejected += 1;
            return false;
        }
        self.refs.insert(hash, block_ref);
        self.blocks.insert(hash, block.clone());
        self.by_round.entry(block.round()).or_default().push(hash);
        self.authentic.insert(hash);
        self.authenticators.insert(hash, *authenticator);
        self.pending_validity.insert(hash);
        true
    }

    /// Inserts a verified notarization (also used by the node after
    /// combining shares itself).
    pub fn insert_notarization(&mut self, n: Notarization) -> bool {
        if self.notarizations.contains_key(&n.block_ref.hash) {
            return false;
        }
        if !self.setup.notary.verify(&n.block_ref.sign_bytes(), &n.sig) {
            self.rejected += 1;
            return false;
        }
        let hash = n.block_ref.hash;
        self.refs.insert(hash, n.block_ref);
        self.notarizations.insert(hash, n);
        if self.valid.contains(&hash) {
            self.notarized.insert(hash);
        } else {
            self.pending_notarized.insert(hash);
        }
        self.recheck_validity();
        true
    }

    /// Inserts a verified finalization (also used after combining).
    pub fn insert_finalization(&mut self, f: Finalization) -> bool {
        if self.finalizations.contains_key(&f.block_ref.hash) {
            return false;
        }
        if !self.setup.finality.verify(&f.block_ref.sign_bytes(), &f.sig) {
            self.rejected += 1;
            return false;
        }
        let hash = f.block_ref.hash;
        self.refs.insert(hash, f.block_ref);
        self.finalizations.insert(hash, f);
        if self.valid.contains(&hash) {
            self.mark_finalized(hash);
        } else {
            self.pending_finalized.insert(hash);
        }
        self.recheck_validity();
        true
    }

    fn insert_notarization_share(&mut self, s: NotarizationShare) -> bool {
        if !self
            .setup
            .notary
            .verify_share(&s.block_ref.sign_bytes(), &s.share)
        {
            self.rejected += 1;
            return false;
        }
        self.refs.insert(s.block_ref.hash, s.block_ref);
        self.notarization_shares
            .entry(s.block_ref.hash)
            .or_default()
            .insert(s.share.signer, s)
            .is_none()
    }

    fn insert_finalization_share(&mut self, s: FinalizationShare) -> bool {
        if !self
            .setup
            .finality
            .verify_share(&s.block_ref.sign_bytes(), &s.share)
        {
            self.rejected += 1;
            return false;
        }
        self.refs.insert(s.block_ref.hash, s.block_ref);
        self.finalization_share_rounds
            .entry(s.block_ref.round)
            .or_default()
            .insert(s.block_ref.hash);
        self.finalization_shares
            .entry(s.block_ref.hash)
            .or_default()
            .insert(s.share.signer, s)
            .is_none()
    }

    /// Recomputes the valid / notarized / finalized classification to a
    /// fixpoint (§3.4). Cheap: only blocks whose status can still change
    /// are revisited.
    fn recheck_validity(&mut self) {
        let genesis_hash = self.setup.genesis.hash();
        loop {
            let mut newly_valid = Vec::new();
            for &hash in &self.pending_validity {
                let block = &self.blocks[&hash];
                let parent_ok = if block.round() == Round::new(1) {
                    block.parent() == genesis_hash
                } else {
                    self.notarized.contains(&block.parent())
                };
                // The parent must sit exactly one round below; the hash
                // link plus per-round bookkeeping guarantees this when
                // the parent is known, but a malicious proposer could
                // reference a notarized block of the wrong round.
                let depth_ok = parent_ok
                    && self
                        .blocks
                        .get(&block.parent())
                        .is_some_and(|p| p.round().next() == block.round());
                if depth_ok {
                    newly_valid.push(hash);
                }
            }
            if newly_valid.is_empty() {
                break;
            }
            for hash in newly_valid {
                self.pending_validity.remove(&hash);
                self.valid.insert(hash);
                // Promote aggregates that arrived before validity; a
                // newly notarized parent may validate children on the
                // next fixpoint iteration.
                if self.pending_notarized.remove(&hash) {
                    self.notarized.insert(hash);
                }
                if self.pending_finalized.remove(&hash) {
                    self.mark_finalized(hash);
                }
            }
        }
    }

    fn mark_finalized(&mut self, hash: Hash256) {
        if self.finalized.insert(hash) {
            let round = self.blocks[&hash].round();
            self.finalized_by_round.insert(round, hash);
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The block body for `hash`, if present.
    pub fn block(&self, hash: &Hash256) -> Option<&HashedBlock> {
        self.blocks.get(hash)
    }

    /// The stored authenticator for `hash` (needed to echo a block).
    pub fn authenticator_of(&self, hash: &Hash256) -> Option<icc_crypto::sig::Signature> {
        self.authenticators.get(hash).copied()
    }

    /// Whether `hash` is valid for this party.
    pub fn is_valid(&self, hash: &Hash256) -> bool {
        self.valid.contains(hash)
    }

    /// Whether `hash` is notarized for this party.
    pub fn is_notarized(&self, hash: &Hash256) -> bool {
        self.notarized.contains(hash)
    }

    /// Whether `hash` is finalized for this party.
    pub fn is_finalized(&self, hash: &Hash256) -> bool {
        self.finalized.contains(hash)
    }

    /// All valid blocks of `round`, in insertion order.
    pub fn valid_blocks(&self, round: Round) -> Vec<&HashedBlock> {
        self.by_round
            .get(&round)
            .into_iter()
            .flatten()
            .filter(|h| self.valid.contains(*h))
            .map(|h| &self.blocks[h])
            .collect()
    }

    /// Any notarized block of `round` (the first to become notarized
    /// in this pool), with its notarization.
    pub fn notarized_block(&self, round: Round) -> Option<(&HashedBlock, &Notarization)> {
        self.by_round.get(&round).into_iter().flatten().find_map(|h| {
            if self.notarized.contains(h) {
                Some((&self.blocks[h], &self.notarizations[h]))
            } else {
                None
            }
        })
    }

    /// All notarized blocks of `round`.
    pub fn notarized_blocks(&self, round: Round) -> Vec<&HashedBlock> {
        self.by_round
            .get(&round)
            .into_iter()
            .flatten()
            .filter(|h| self.notarized.contains(*h))
            .map(|h| &self.blocks[h])
            .collect()
    }

    /// The notarization for `hash`, if present.
    pub fn notarization_of(&self, hash: &Hash256) -> Option<&Notarization> {
        self.notarizations.get(hash)
    }

    /// The finalization for `hash`, if present.
    pub fn finalization_of(&self, hash: &Hash256) -> Option<&Finalization> {
        self.finalizations.get(hash)
    }

    /// A *valid but non-notarized* block of `round` holding a full set
    /// of `n − t` notarization shares; combines them (Fig. 1 clause (a)).
    pub fn completable_notarization(&self, round: Round) -> Option<Notarization> {
        let need = self.setup.config.notarization_threshold();
        for h in self.by_round.get(&round).into_iter().flatten() {
            if !self.valid.contains(h) || self.notarized.contains(h) {
                continue;
            }
            if let Some(shares) = self.notarization_shares.get(h) {
                if shares.len() >= need {
                    let block_ref = self.refs[h];
                    let sig = self
                        .setup
                        .notary
                        .combine(&block_ref.sign_bytes(), shares.values().map(|s| s.share))
                        .expect("shares were verified on insertion");
                    return Some(Notarization { block_ref, sig });
                }
            }
        }
        None
    }

    /// A *valid but non-finalized* block of round > `above` holding a
    /// full set of finalization shares; combines them (Fig. 2 case ii).
    pub fn completable_finalization(&self, above: Round) -> Option<Finalization> {
        let need = self.setup.config.finalization_threshold();
        for hashes in self
            .finalization_share_rounds
            .range(above.next()..)
            .map(|(_, hs)| hs)
        {
            for h in hashes {
                let shares = &self.finalization_shares[h];
                if shares.len() < need || !self.valid.contains(h) || self.finalized.contains(h) {
                    continue;
                }
                let block_ref = self.refs[h];
                let sig = self
                    .setup
                    .finality
                    .combine(&block_ref.sign_bytes(), shares.values().map(|s| s.share))
                    .expect("shares were verified on insertion");
                return Some(Finalization { block_ref, sig });
            }
        }
        None
    }

    /// The highest finalized block with round > `above`, if any
    /// (Fig. 2 case i).
    pub fn finalized_above(&self, above: Round) -> Option<&HashedBlock> {
        self.finalized_by_round
            .range(above.next()..)
            .next_back()
            .map(|(_, h)| &self.blocks[h])
    }

    /// The chain of blocks `(above, k]` ending at `block` (ancestors
    /// first). Returns `None` if any ancestor body is missing — which
    /// cannot happen for a block that is valid for this party.
    pub fn chain_back_to(&self, block: &HashedBlock, above: Round) -> Option<Vec<HashedBlock>> {
        let mut chain = Vec::new();
        let mut cur = block.clone();
        while cur.round() > above {
            let parent = cur.parent();
            let next = if cur.round() == Round::new(1) {
                None
            } else {
                Some(self.blocks.get(&parent)?.clone())
            };
            chain.push(cur);
            match next {
                Some(p) => cur = p,
                None => break,
            }
        }
        chain.reverse();
        Some(chain)
    }

    // ------------------------------------------------------------------
    // Beacon
    // ------------------------------------------------------------------

    /// The computed beacon value for `round`, if known.
    pub fn beacon(&self, round: Round) -> Option<&BeaconValue> {
        self.beacons.get(&round)
    }

    /// Attempts to compute the round-`round` beacon from held shares.
    /// Requires `R_{round−1}`; invalid shares are discarded on the way.
    /// Returns the value if newly computed.
    pub fn try_compute_beacon(&mut self, round: Round) -> Option<BeaconValue> {
        if self.beacons.contains_key(&round) {
            return None;
        }
        let prev = *self.beacons.get(&round.prev()?)?;
        let msg = beacon_sign_message(round.get(), &prev);
        let shares = self.beacon_shares.entry(round).or_default();
        // Drop shares that fail verification now that we can check them.
        let setup = &self.setup;
        let mut dropped = 0u64;
        shares.retain(|_, s| {
            let ok = setup.beacon.verify_share(&msg, s);
            if !ok {
                dropped += 1;
            }
            ok
        });
        self.rejected += dropped;
        if shares.len() < self.setup.config.beacon_threshold() {
            return None;
        }
        let sig = self
            .setup
            .beacon
            .combine(&msg, shares.values().copied())
            .expect("verified shares combine");
        let value = BeaconValue::Signature(sig);
        self.beacons.insert(round, value);
        Some(value)
    }

    /// Number of (unverified) shares held for the round-`round` beacon.
    pub fn beacon_share_count(&self, round: Round) -> usize {
        self.beacon_shares.get(&round).map_or(0, BTreeMap::len)
    }

    /// Discards artifacts strictly below `round` — the garbage-collection
    /// optimization §3.1 alludes to. Never discards finalized chain
    /// entries' bodies at or below the bar that later rounds reference.
    pub fn purge_below(&mut self, round: Round) {
        let keep: HashSet<Hash256> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.round() >= round || b.round().is_genesis())
            .map(|(h, _)| *h)
            .collect();
        self.blocks.retain(|h, _| keep.contains(h));
        self.by_round.retain(|r, _| *r >= round || r.is_genesis());
        self.authentic.retain(|h| keep.contains(h));
        self.authenticators.retain(|h, _| keep.contains(h));
        self.valid.retain(|h| keep.contains(h));
        self.notarized.retain(|h| keep.contains(h));
        self.finalized.retain(|h| keep.contains(h));
        self.notarizations.retain(|h, _| keep.contains(h));
        self.finalizations.retain(|h, _| keep.contains(h));
        self.notarization_shares.retain(|h, _| keep.contains(h));
        self.finalization_shares.retain(|h, _| keep.contains(h));
        self.finalization_share_rounds.retain(|r, _| *r >= round);
        self.pending_notarized.retain(|h| keep.contains(h));
        self.pending_finalized.retain(|h| keep.contains(h));
        self.pending_validity.retain(|h| keep.contains(h));
        self.finalized_by_round.retain(|r, _| *r >= round || r.is_genesis());
        self.beacon_shares.retain(|r, _| *r >= round);
        // Keep the last beacon below the bar: the next round's message
        // chains from it.
        let last_needed = round.prev().unwrap_or(Round::GENESIS);
        self.beacons.retain(|r, _| *r >= last_needed);
    }

    /// Total number of block bodies held (diagnostics).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts;
    use crate::keys::{generate_keys, NodeKeys};
    use icc_types::block::{Block, Payload};
    use icc_types::SubnetConfig;

    fn keys() -> Vec<NodeKeys> {
        generate_keys(SubnetConfig::new(4), 11)
    }

    fn block_at(keys: &NodeKeys, round: u64, parent: Hash256, tag: u8) -> HashedBlock {
        Block::new(
            Round::new(round),
            keys.index,
            parent,
            Payload::from_commands(vec![icc_types::Command::new(vec![tag])]),
        )
        .into_hashed()
    }

    fn notarize(keys: &[NodeKeys], block: &HashedBlock) -> Notarization {
        let r = BlockRef::of_hashed(block);
        let shares = keys
            .iter()
            .take(keys[0].setup.config.notarization_threshold())
            .map(|k| artifacts::notarization_share(k, r).share);
        Notarization {
            block_ref: r,
            sig: keys[0].setup.notary.combine(&r.sign_bytes(), shares).unwrap(),
        }
    }

    fn finalize(keys: &[NodeKeys], block: &HashedBlock) -> Finalization {
        let r = BlockRef::of_hashed(block);
        let shares = keys
            .iter()
            .take(keys[0].setup.config.finalization_threshold())
            .map(|k| artifacts::finalization_share(k, r).share);
        Finalization {
            block_ref: r,
            sig: keys[0].setup.finality.combine(&r.sign_bytes(), shares).unwrap(),
        }
    }

    #[test]
    fn genesis_preclassified() {
        let ks = keys();
        let pool = Pool::new(Arc::clone(&ks[0].setup));
        let g = ks[0].setup.genesis.hash();
        assert!(pool.is_valid(&g));
        assert!(pool.is_notarized(&g));
        assert!(pool.is_finalized(&g));
        assert_eq!(pool.beacon(Round::GENESIS), Some(&ks[0].setup.genesis_beacon));
    }

    #[test]
    fn round1_block_becomes_valid_then_notarized() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b = block_at(&ks[1], 1, ks[0].setup.genesis.hash(), 1);
        let p = artifacts::proposal(&ks[1], b.clone(), None);
        assert!(pool.insert(&ConsensusMessage::Proposal(p)));
        assert!(pool.is_valid(&b.hash()));
        assert!(!pool.is_notarized(&b.hash()));
        let n = notarize(&ks, &b);
        assert!(pool.insert(&ConsensusMessage::Notarization(n)));
        assert!(pool.is_notarized(&b.hash()));
        assert_eq!(pool.notarized_block(Round::new(1)).unwrap().0.hash(), b.hash());
    }

    #[test]
    fn forged_authenticator_rejected() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b = block_at(&ks[1], 1, ks[0].setup.genesis.hash(), 1);
        // Signed by party 2, claiming to be party 1's block.
        let mut p = artifacts::proposal(&ks[1], b, None);
        p.authenticator = ks[2].auth.sign(domains::AUTH, b"junk");
        assert!(!pool.insert(&ConsensusMessage::Proposal(p)));
        assert_eq!(pool.rejected_count(), 1);
        assert!(pool.valid_blocks(Round::new(1)).is_empty());
    }

    #[test]
    fn orphan_block_validates_when_parent_notarizes() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b1 = block_at(&ks[1], 1, ks[0].setup.genesis.hash(), 1);
        let b2 = block_at(&ks[2], 2, b1.hash(), 2);
        // Child arrives first: authentic but not valid.
        let p2 = artifacts::proposal(&ks[2], b2.clone(), Some(notarize(&ks, &b1)));
        pool.insert(&ConsensusMessage::Proposal(p2));
        assert!(!pool.is_valid(&b2.hash()));
        // Parent proposal arrives: the notarization (already held) plus
        // the body make the parent notarized, cascading to the child.
        let p1 = artifacts::proposal(&ks[1], b1.clone(), None);
        pool.insert(&ConsensusMessage::Proposal(p1));
        assert!(pool.is_notarized(&b1.hash()));
        assert!(pool.is_valid(&b2.hash()));
    }

    #[test]
    fn completable_notarization_requires_quorum_and_validity() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b = block_at(&ks[0], 1, ks[0].setup.genesis.hash(), 1);
        let r = BlockRef::of_hashed(&b);
        pool.insert(&ConsensusMessage::Proposal(artifacts::proposal(&ks[0], b.clone(), None)));
        // Two of three required shares: not completable.
        for k in &ks[..2] {
            pool.insert(&ConsensusMessage::NotarizationShare(
                artifacts::notarization_share(k, r),
            ));
        }
        assert!(pool.completable_notarization(Round::new(1)).is_none());
        pool.insert(&ConsensusMessage::NotarizationShare(
            artifacts::notarization_share(&ks[2], r),
        ));
        let n = pool.completable_notarization(Round::new(1)).unwrap();
        assert_eq!(n.block_ref.hash, b.hash());
        assert!(ks[0].setup.notary.verify(&r.sign_bytes(), &n.sig));
        // Once notarized, it is no longer "completable".
        pool.insert_notarization(n);
        assert!(pool.completable_notarization(Round::new(1)).is_none());
    }

    #[test]
    fn invalid_share_rejected_and_counted() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b = block_at(&ks[0], 1, ks[0].setup.genesis.hash(), 1);
        let r = BlockRef::of_hashed(&b);
        let mut s = artifacts::notarization_share(&ks[1], r);
        s.share.signer = 2; // claim someone else produced it
        assert!(!pool.insert(&ConsensusMessage::NotarizationShare(s)));
        assert_eq!(pool.rejected_count(), 1);
    }

    #[test]
    fn finalization_flow_and_chain_walk() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b1 = block_at(&ks[1], 1, ks[0].setup.genesis.hash(), 1);
        let b2 = block_at(&ks[2], 2, b1.hash(), 2);
        pool.insert(&ConsensusMessage::Proposal(artifacts::proposal(&ks[1], b1.clone(), None)));
        pool.insert(&ConsensusMessage::Notarization(notarize(&ks, &b1)));
        pool.insert(&ConsensusMessage::Proposal(artifacts::proposal(
            &ks[2],
            b2.clone(),
            Some(notarize(&ks, &b1)),
        )));
        pool.insert(&ConsensusMessage::Notarization(notarize(&ks, &b2)));
        assert!(pool.finalized_above(Round::GENESIS).is_none());
        pool.insert(&ConsensusMessage::Finalization(finalize(&ks, &b2)));
        let f = pool.finalized_above(Round::GENESIS).unwrap();
        assert_eq!(f.hash(), b2.hash());
        let chain = pool.chain_back_to(&b2, Round::GENESIS).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].hash(), b1.hash());
        assert_eq!(chain[1].hash(), b2.hash());
        let partial = pool.chain_back_to(&b2, Round::new(1)).unwrap();
        assert_eq!(partial.len(), 1);
        assert_eq!(partial[0].hash(), b2.hash());
    }

    #[test]
    fn completable_finalization() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b1 = block_at(&ks[1], 1, ks[0].setup.genesis.hash(), 1);
        let r = BlockRef::of_hashed(&b1);
        pool.insert(&ConsensusMessage::Proposal(artifacts::proposal(&ks[1], b1.clone(), None)));
        for k in &ks[..3] {
            pool.insert(&ConsensusMessage::FinalizationShare(
                artifacts::finalization_share(k, r),
            ));
        }
        let f = pool.completable_finalization(Round::GENESIS).unwrap();
        assert_eq!(f.block_ref.hash, b1.hash());
        // Not completable below the bar.
        assert!(pool.completable_finalization(Round::new(1)).is_none());
    }

    #[test]
    fn beacon_combines_at_threshold_and_drops_bad_shares() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let r1 = Round::new(1);
        let prev = ks[0].setup.genesis_beacon;
        // A garbage share (wrong round message) plus one good one: not
        // enough.
        let bad = artifacts::beacon_share(&ks[3], Round::new(2), &prev);
        pool.insert(&ConsensusMessage::BeaconShare(icc_types::messages::BeaconShare {
            round: r1,
            share: bad.share,
        }));
        pool.insert(&ConsensusMessage::BeaconShare(artifacts::beacon_share(&ks[0], r1, &prev)));
        assert!(pool.try_compute_beacon(r1).is_none());
        assert_eq!(pool.beacon_share_count(r1), 1, "bad share dropped");
        // A second good share reaches t + 1 = 2.
        pool.insert(&ConsensusMessage::BeaconShare(artifacts::beacon_share(&ks[1], r1, &prev)));
        let v = pool.try_compute_beacon(r1).unwrap();
        assert_eq!(pool.beacon(r1), Some(&v));
        // Beacon values chain: round 2 now computable from new shares.
        pool.insert(&ConsensusMessage::BeaconShare(artifacts::beacon_share(&ks[0], Round::new(2), &v)));
        pool.insert(&ConsensusMessage::BeaconShare(artifacts::beacon_share(&ks[2], Round::new(2), &v)));
        assert!(pool.try_compute_beacon(Round::new(2)).is_some());
    }

    #[test]
    fn wrong_depth_parent_rejected() {
        // A malicious proposer extends a round-1 block with a "round 3"
        // child; the child must never become valid.
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b1 = block_at(&ks[1], 1, ks[0].setup.genesis.hash(), 1);
        pool.insert(&ConsensusMessage::Proposal(artifacts::proposal(&ks[1], b1.clone(), None)));
        pool.insert(&ConsensusMessage::Notarization(notarize(&ks, &b1)));
        let bad = block_at(&ks[2], 3, b1.hash(), 9);
        pool.insert(&ConsensusMessage::Proposal(artifacts::proposal(&ks[2], bad.clone(), None)));
        assert!(!pool.is_valid(&bad.hash()));
    }

    #[test]
    fn purge_below_keeps_recent_and_genesis() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b1 = block_at(&ks[1], 1, ks[0].setup.genesis.hash(), 1);
        let b2 = block_at(&ks[2], 2, b1.hash(), 2);
        pool.insert(&ConsensusMessage::Proposal(artifacts::proposal(&ks[1], b1.clone(), None)));
        pool.insert(&ConsensusMessage::Notarization(notarize(&ks, &b1)));
        pool.insert(&ConsensusMessage::Proposal(artifacts::proposal(
            &ks[2],
            b2.clone(),
            Some(notarize(&ks, &b1)),
        )));
        assert_eq!(pool.block_count(), 3); // genesis + 2
        pool.purge_below(Round::new(2));
        assert_eq!(pool.block_count(), 2); // genesis + b2
        assert!(pool.block(&b1.hash()).is_none());
        assert!(pool.block(&b2.hash()).is_some());
    }

    #[test]
    fn duplicate_inserts_are_noops() {
        let ks = keys();
        let mut pool = Pool::new(Arc::clone(&ks[0].setup));
        let b = block_at(&ks[1], 1, ks[0].setup.genesis.hash(), 1);
        let p = ConsensusMessage::Proposal(artifacts::proposal(&ks[1], b.clone(), None));
        assert!(pool.insert(&p));
        assert!(!pool.insert(&p));
        let s = ConsensusMessage::NotarizationShare(artifacts::notarization_share(
            &ks[0],
            BlockRef::of_hashed(&b),
        ));
        assert!(pool.insert(&s));
        assert!(!pool.insert(&s));
    }
}
