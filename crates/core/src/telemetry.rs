//! Per-replica telemetry: protocol-level metrics and the flight
//! recorder of consensus phase events.
//!
//! Every [`ConsensusCore`](crate::ConsensusCore) owns a
//! [`NodeTelemetry`]: a handful of counters/histograms capturing the
//! protocol's hot numbers (rounds entered, blocks committed, round
//! durations, finalization latency) plus a bounded
//! [`FlightRecorder`](icc_telemetry::FlightRecorder) of structured
//! [`SpanEvent`](icc_telemetry::SpanEvent)s — the raw material for the
//! critical-path analyzer and the Chrome-trace exporter in
//! `icc-telemetry`.
//!
//! All of this compiles to no-ops when the `telemetry` feature is off
//! (the types collapse to ZSTs), so the protocol hot path carries zero
//! instrumentation cost in `--no-default-features` builds — verified by
//! the `telemetry_overhead` cell of the hotpath bench.
//!
//! Telemetry is *observability*, not replica state: it survives
//! [`crash`](crate::ConsensusCore::crash) / restore cycles the way an
//! external monitoring agent would, so a trace shows the outage rather
//! than forgetting it.

use icc_telemetry::{AnomalyDetector, AnomalyEvent, Counter, FlightRecorder, Histogram, SpanEvent};

/// Protocol-level metrics for one replica.
///
/// With the `telemetry` feature off every field is a ZST and every
/// method an inlined no-op.
#[derive(Debug, Default)]
pub struct CoreMetrics {
    /// Rounds this replica entered (beacon computed, rank derived).
    pub rounds_entered: Counter,
    /// Blocks this replica proposed (equivocating proposals count once).
    pub blocks_proposed: Counter,
    /// Blocks committed (output by Fig. 2, including catch-up tips).
    pub blocks_committed: Counter,
    /// Client commands contained in committed blocks.
    pub commands_committed: Counter,
    /// Certified catch-up packages applied.
    pub catch_ups_applied: Counter,
    /// Round duration: round entry to notarized finish, in µs.
    pub round_duration_us: Histogram,
    /// Finalization latency: round entry to commit of that round's
    /// block, in µs. The headline p50/p90/p99 columns of the experiment
    /// tables read from this histogram.
    pub finalization_latency_us: Histogram,
}

impl CoreMetrics {
    /// Folds another replica's metrics into this one (cluster roll-up).
    pub fn merge(&mut self, other: &CoreMetrics) {
        self.rounds_entered.merge(&other.rounds_entered);
        self.blocks_proposed.merge(&other.blocks_proposed);
        self.blocks_committed.merge(&other.blocks_committed);
        self.commands_committed.merge(&other.commands_committed);
        self.catch_ups_applied.merge(&other.catch_ups_applied);
        self.round_duration_us.merge(&other.round_duration_us);
        self.finalization_latency_us
            .merge(&other.finalization_latency_us);
    }
}

/// A replica's full telemetry bundle: metrics, the flight recorder,
/// and the live anomaly detector watching the span stream.
#[derive(Debug, Default)]
pub struct NodeTelemetry {
    /// Protocol-level counters and latency histograms.
    pub metrics: CoreMetrics,
    /// Bounded ring of structured span events (consensus phases,
    /// catch-ups, gossip retries).
    pub recorder: FlightRecorder,
    /// Rolling stall/flap/storm watcher over the span stream.
    pub anomalies: AnomalyDetector,
}

impl NodeTelemetry {
    /// The one funnel every span goes through: records into the ring
    /// AND feeds the anomaly detector; anomalies the detector emits are
    /// mirrored back into the ring as compact
    /// [`SpanKind::Anomaly`](icc_telemetry::SpanKind) events (which the
    /// detector itself ignores — no feedback loop).
    pub fn record(&mut self, ev: SpanEvent) {
        self.recorder.record(ev);
        if self.anomalies.observe(&ev) > 0 {
            self.mirror_new_anomalies();
        }
    }

    /// Clock tick for silent-stall detection: a stalled round produces
    /// no events, so the driver must poke the detector with the current
    /// time between spans.
    pub fn tick(&mut self, now_us: u64) {
        if self.anomalies.tick(now_us) > 0 {
            self.mirror_new_anomalies();
        }
    }

    /// Feed one peer link-state sample (from transport liveness diffs).
    pub fn observe_peer(&mut self, peer: u32, up: bool, at_us: u64) {
        if self.anomalies.observe_peer(peer, up, at_us) > 0 {
            self.mirror_new_anomalies();
        }
    }

    /// Feed one fsync/flush latency sample (from the WAL layer).
    pub fn observe_fsync(&mut self, at_us: u64, latency_us: u64) {
        if self.anomalies.observe_fsync(at_us, latency_us) > 0 {
            self.mirror_new_anomalies();
        }
    }

    /// The newest retained anomalies, oldest first.
    pub fn recent_anomalies(&self) -> Vec<AnomalyEvent> {
        self.anomalies.recent()
    }

    fn mirror_new_anomalies(&mut self) {
        for a in self.anomalies.drain_new() {
            self.recorder.record(a.to_span_event());
        }
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn merge_folds_counters_and_histograms() {
        let mut a = CoreMetrics::default();
        a.rounds_entered.inc();
        a.round_duration_us.observe(1_000);
        let mut b = CoreMetrics::default();
        b.rounds_entered.inc();
        b.rounds_entered.inc();
        b.round_duration_us.observe(3_000);
        a.merge(&b);
        assert_eq!(a.rounds_entered.get(), 3);
        assert_eq!(a.round_duration_us.count(), 2);
        assert_eq!(a.round_duration_us.max(), 3_000);
    }
}
