//! Durable replica state: periodic checkpoints plus a write-ahead log.
//!
//! The paper's fault model includes parties that "simply crash" and may
//! come back (§1). A restarting replica must not forget what it helped
//! finalize — doing so would not violate safety (certificates protect
//! that) but would force a full re-sync and lose its input queue dedup.
//! [`DurableStore`] is the replica's "disk": it survives
//! [`ConsensusCore::crash`](crate::ConsensusCore::crash) while every
//! other field of the core is volatile. In the simulator the store is
//! plain memory owned by the node object (the engine never drops node
//! state), which keeps executions deterministic; a real deployment
//! would back it with fsync'd files.
//!
//! Contents:
//!
//! * a [`Checkpoint`] — the latest finalized block at the time it was
//!   taken, with its notarization + finalization certificates, the
//!   beacon value of its round (the base the restored beacon chain and
//!   any later catch-up verification chains from), and the set of
//!   committed command digests;
//! * a [`WalEntry`] log of everything certified since the checkpoint:
//!   per-round beacon values, notarized blocks (body + certificate),
//!   finalizations, and committed command digests.
//!
//! Restore (see [`ConsensusCore::restore`](crate::ConsensusCore::restore))
//! installs the checkpoint as a certified root and replays the log
//! through the pool's *trusted* path: every artifact in the store was
//! verified (or produced) by this replica before it was appended, so
//! replay performs **zero** signature verifications — the property the
//! `checkpoint_restore` proptests pin down.
//!
//! Taking a checkpoint compacts the log: entries at or below the
//! checkpoint round are dropped. The checkpoint stores its round's
//! beacon value explicitly because a finalization can commit round `k`
//! while the replica is still *in* round `k` — compaction could
//! otherwise drop the `Beacon(k)` entry the restored chain needs.

use icc_crypto::beacon::BeaconValue;
use icc_crypto::Hash256;
use icc_types::messages::{BlockProposal, Finalization, Notarization};
use icc_types::Round;
use std::collections::HashSet;

/// One append-only log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// The computed beacon value of a round.
    Beacon(Round, BeaconValue),
    /// A block body (with authenticator) and, when known, its
    /// notarization certificate.
    Notarized {
        /// The block and its authenticator (`parent_notarization` is
        /// `None`; the parent's certificate has its own entry).
        proposal: BlockProposal,
        /// The `n − t` notarization, when it was known at append time.
        notarization: Option<Notarization>,
    },
    /// A finalization certificate.
    Finalization(Finalization),
    /// Command digests committed by a block (restores input dedup).
    Committed {
        /// The committed block's round.
        round: Round,
        /// Digests of the commands the block committed.
        digests: Vec<Hash256>,
    },
}

impl WalEntry {
    /// The round the entry pertains to (drives compaction).
    pub fn round(&self) -> Round {
        match self {
            WalEntry::Beacon(r, _) => *r,
            WalEntry::Notarized { proposal, .. } => proposal.block.round(),
            WalEntry::Finalization(f) => f.block_ref.round,
            WalEntry::Committed { round, .. } => *round,
        }
    }
}

/// A certified snapshot: the latest finalized block when the checkpoint
/// was taken, everything needed to install it as a trusted root.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The finalized block with its authenticator.
    pub proposal: BlockProposal,
    /// Its notarization certificate.
    pub notarization: Notarization,
    /// Its finalization certificate.
    pub finalization: Finalization,
    /// The beacon value of the checkpoint round — the chaining base for
    /// restored and caught-up beacon segments.
    pub beacon: BeaconValue,
    /// All command digests committed up to (and including) this round.
    pub committed: Vec<Hash256>,
}

impl Checkpoint {
    /// The checkpointed round.
    pub fn round(&self) -> Round {
        self.proposal.block.round()
    }
}

/// The replica's durable state: at most one checkpoint plus the log of
/// certified artifacts since it.
#[derive(Debug, Default)]
pub struct DurableStore {
    checkpoint: Option<Checkpoint>,
    wal: Vec<WalEntry>,
    /// Highest round whose beacon has been logged (dedup).
    beacon_upto: Round,
    /// `(block hash, notarization present)` pairs already logged.
    logged_blocks: HashSet<(Hash256, bool)>,
    /// Block hashes whose finalization is already logged.
    logged_finalizations: HashSet<Hash256>,
    wal_appends: u64,
    checkpoints_taken: u64,
}

impl DurableStore {
    /// An empty store (fresh replica, nothing durable yet).
    pub fn new() -> DurableStore {
        DurableStore::default()
    }

    /// Logs a round's beacon value (at most once per round).
    pub fn append_beacon(&mut self, round: Round, value: BeaconValue) {
        if round > self.beacon_upto {
            self.beacon_upto = round;
            self.wal.push(WalEntry::Beacon(round, value));
            self.wal_appends += 1;
        }
    }

    /// Logs a block body and (optionally) its notarization. Re-appending
    /// the same `(block, has-notarization)` shape is a no-op, so a block
    /// first logged bare can later be upgraded with its certificate.
    pub fn append_block(&mut self, proposal: BlockProposal, notarization: Option<Notarization>) {
        let key = (proposal.block.hash(), notarization.is_some());
        if self.logged_blocks.insert(key) {
            self.wal.push(WalEntry::Notarized {
                proposal,
                notarization,
            });
            self.wal_appends += 1;
        }
    }

    /// Logs a finalization certificate (at most once per block).
    pub fn append_finalization(&mut self, f: Finalization) {
        if self.logged_finalizations.insert(f.block_ref.hash) {
            self.wal.push(WalEntry::Finalization(f));
            self.wal_appends += 1;
        }
    }

    /// Logs the command digests a block committed.
    pub fn append_committed(&mut self, round: Round, digests: Vec<Hash256>) {
        if digests.is_empty() {
            return;
        }
        self.wal.push(WalEntry::Committed { round, digests });
        self.wal_appends += 1;
    }

    /// Installs a checkpoint and compacts the log: entries at or below
    /// the checkpoint round are dropped (the checkpoint carries the
    /// beacon base itself).
    pub fn install_checkpoint(&mut self, cp: Checkpoint) {
        let bar = cp.round();
        self.wal.retain(|e| e.round() > bar);
        self.checkpoint = Some(cp);
        self.checkpoints_taken += 1;
    }

    /// The installed checkpoint, if any.
    pub fn checkpoint(&self) -> Option<&Checkpoint> {
        self.checkpoint.as_ref()
    }

    /// The log entries since the checkpoint, in append order.
    pub fn wal(&self) -> &[WalEntry] {
        &self.wal
    }

    /// Current number of log entries (post-compaction).
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Lifetime count of log appends.
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends
    }

    /// Lifetime count of checkpoints taken.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Whether nothing durable has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.checkpoint.is_none() && self.wal.is_empty()
    }
}
