//! Durable replica state: periodic checkpoints plus a write-ahead log.
//!
//! The paper's fault model includes parties that "simply crash" and may
//! come back (§1). A restarting replica must not forget what it helped
//! finalize — doing so would not violate safety (certificates protect
//! that) but would force a full re-sync and lose its input queue dedup.
//! [`DurableStore`] is the replica's "disk": it survives
//! [`ConsensusCore::crash`](crate::ConsensusCore::crash) while every
//! other field of the core is volatile.
//!
//! Where the bytes actually live is a [`StorageBackend`] decision:
//!
//! * [`MemBackend`] (the default) keeps nothing beyond the in-memory
//!   mirror below — the simulator's choice, byte-identical executions
//!   and no filesystem in the loop;
//! * [`FileBackend`] persists every append to an `icc-wal` segmented
//!   write-ahead log and every checkpoint to an atomic checkpoint file,
//!   with a configurable fsync policy — the `replica --data-dir`
//!   choice. A fresh process pointed at the same directory recovers the
//!   store (and therefore the replica) from disk.
//!
//! Contents, whichever backend:
//!
//! * a [`Checkpoint`] — the latest finalized block at the time it was
//!   taken, with its notarization + finalization certificates, the
//!   beacon value of its round (the base the restored beacon chain and
//!   any later catch-up verification chains from), and the set of
//!   committed command digests;
//! * a [`WalEntry`] log of everything certified since the checkpoint:
//!   per-round beacon values, notarized blocks (body + certificate),
//!   finalizations, and committed command digests.
//!
//! Restore (see [`ConsensusCore::restore`](crate::ConsensusCore::restore))
//! installs the checkpoint as a certified root and replays the log
//! through the pool's *trusted* path: every artifact in the store was
//! verified (or produced) by this replica before it was appended, so
//! replay performs **zero** signature verifications — the property the
//! `checkpoint_restore` proptests pin down and the `net_cluster`
//! restart assertion enforces end-to-end over a real `--data-dir`.
//!
//! Taking a checkpoint compacts the log: entries at or below the
//! checkpoint round are dropped (on disk: whole covered segments are
//! deleted). The checkpoint stores its round's beacon value explicitly
//! because a finalization can commit round `k` while the replica is
//! still *in* round `k` — compaction could otherwise drop the
//! `Beacon(k)` entry the restored chain needs.

use crate::recovery::EpochTransition;
use icc_crypto::beacon::BeaconValue;
use icc_crypto::Hash256;
use icc_types::codec::{
    decode_from_slice, decode_seq, encode_seq, encode_to_vec, CodecError, Decode, Encode, Reader,
};
use icc_types::messages::{BlockProposal, Finalization, Notarization};
use icc_types::Round;
pub use icc_wal::StorageCounters;
use icc_wal::{Wal, WalOptions};
use std::collections::HashSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One append-only log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// The computed beacon value of a round.
    Beacon(Round, BeaconValue),
    /// A block body (with authenticator) and, when known, its
    /// notarization certificate.
    Notarized {
        /// The block and its authenticator (`parent_notarization` is
        /// `None`; the parent's certificate has its own entry).
        proposal: BlockProposal,
        /// The `n − t` notarization, when it was known at append time.
        notarization: Option<Notarization>,
    },
    /// A finalization certificate.
    Finalization(Finalization),
    /// Command digests committed by a block (restores input dedup).
    Committed {
        /// The committed block's round.
        round: Round,
        /// Digests of the commands the block committed.
        digests: Vec<Hash256>,
    },
    /// An archived epoch-transition certificate (the handoff
    /// finalization of the outgoing epoch). Restoring it lets the
    /// replica serve cross-epoch catch-up packages without
    /// re-finalizing the boundary; like everything else in the log it
    /// replays trusted. Checkpoints carry the full transition chain
    /// themselves (see [`Checkpoint::transitions`]), so compaction may
    /// drop these entries.
    EpochTransition(EpochTransition),
}

impl WalEntry {
    /// The round the entry pertains to (drives compaction).
    pub fn round(&self) -> Round {
        match self {
            WalEntry::Beacon(r, _) => *r,
            WalEntry::Notarized { proposal, .. } => proposal.block.round(),
            WalEntry::Finalization(f) => f.block_ref.round,
            WalEntry::Committed { round, .. } => *round,
            WalEntry::EpochTransition(t) => t.round(),
        }
    }
}

impl Encode for WalEntry {
    /// On-disk record payload: a variant tag then the artifact's
    /// canonical wire encoding (the same codec artifacts use on the
    /// network, so there is exactly one byte format per artifact).
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalEntry::Beacon(r, v) => {
                buf.push(0);
                r.encode(buf);
                v.encode(buf);
            }
            WalEntry::Notarized {
                proposal,
                notarization,
            } => {
                buf.push(1);
                proposal.encode(buf);
                notarization.encode(buf);
            }
            WalEntry::Finalization(f) => {
                buf.push(2);
                f.encode(buf);
            }
            WalEntry::Committed { round, digests } => {
                buf.push(3);
                round.encode(buf);
                encode_seq(digests, buf);
            }
            WalEntry::EpochTransition(t) => {
                buf.push(4);
                t.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            WalEntry::Beacon(r, v) => Encode::encoded_len(r) + v.encoded_len(),
            WalEntry::Notarized {
                proposal,
                notarization,
            } => proposal.encoded_len() + notarization.encoded_len(),
            WalEntry::Finalization(f) => Encode::encoded_len(f),
            WalEntry::Committed { round, digests } => {
                Encode::encoded_len(round) + 8 + digests.len() * 32
            }
            WalEntry::EpochTransition(t) => Encode::encoded_len(t),
        }
    }
}

impl Decode for WalEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(WalEntry::Beacon(Round::decode(r)?, BeaconValue::decode(r)?)),
            1 => Ok(WalEntry::Notarized {
                proposal: BlockProposal::decode(r)?,
                notarization: Option::<Notarization>::decode(r)?,
            }),
            2 => Ok(WalEntry::Finalization(Finalization::decode(r)?)),
            3 => Ok(WalEntry::Committed {
                round: Round::decode(r)?,
                digests: decode_seq(r)?,
            }),
            4 => Ok(WalEntry::EpochTransition(EpochTransition::decode(r)?)),
            tag => Err(CodecError::InvalidTag {
                tag,
                ty: "WalEntry",
            }),
        }
    }
}

/// A certified snapshot: the latest finalized block when the checkpoint
/// was taken, everything needed to install it as a trusted root.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The finalized block with its authenticator.
    pub proposal: BlockProposal,
    /// Its notarization certificate.
    pub notarization: Notarization,
    /// Its finalization certificate.
    pub finalization: Finalization,
    /// The beacon value of the checkpoint round — the chaining base for
    /// restored and caught-up beacon segments.
    pub beacon: BeaconValue,
    /// All command digests committed up to (and including) this round.
    pub committed: Vec<Hash256>,
    /// The full cross-epoch certificate chain archived so far (one
    /// entry per activated epoch boundary, ascending). Carried by the
    /// checkpoint itself so log compaction can drop the
    /// [`WalEntry::EpochTransition`] records without the replica losing
    /// its ability to serve cross-epoch catch-up packages.
    pub transitions: Vec<EpochTransition>,
}

impl Checkpoint {
    /// The checkpointed round.
    pub fn round(&self) -> Round {
        self.proposal.block.round()
    }
}

impl Encode for Checkpoint {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.proposal.encode(buf);
        self.notarization.encode(buf);
        self.finalization.encode(buf);
        self.beacon.encode(buf);
        encode_seq(&self.committed, buf);
        (self.transitions.len() as u64).encode(buf);
        for t in &self.transitions {
            t.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        self.proposal.encoded_len()
            + Encode::encoded_len(&self.notarization)
            + Encode::encoded_len(&self.finalization)
            + self.beacon.encoded_len()
            + 8
            + self.committed.len() * 32
            + 8
            + self
                .transitions
                .iter()
                .map(Encode::encoded_len)
                .sum::<usize>()
    }
}

impl Decode for Checkpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let proposal = BlockProposal::decode(r)?;
        let notarization = Notarization::decode(r)?;
        let finalization = Finalization::decode(r)?;
        let beacon = BeaconValue::decode(r)?;
        let committed = decode_seq(r)?;
        let tcount = u64::decode(r)?;
        if tcount > icc_types::codec::MAX_LEN {
            return Err(CodecError::LengthOverflow { len: tcount });
        }
        let mut transitions = Vec::with_capacity((tcount as usize).min(1024));
        for _ in 0..tcount {
            transitions.push(EpochTransition::decode(r)?);
        }
        Ok(Checkpoint {
            proposal,
            notarization,
            finalization,
            beacon,
            committed,
            transitions,
        })
    }
}

/// Where durable state actually lives. [`DurableStore`] keeps an
/// in-memory mirror (the thing `restore` replays) and forwards every
/// mutation here; the backend's only obligations are to persist what it
/// is given and to hand back whatever survived on [`load`].
///
/// Persistence methods are deliberately infallible at this boundary:
/// the consensus hot path cannot meaningfully handle a disk error
/// mid-round, so a failing backend absorbs the error, counts it in
/// [`StorageCounters::io_errors`], and the replica keeps running with
/// weakened durability (the same stance as a production database's
/// async error path — surfaced via telemetry, not a panic).
///
/// [`load`]: StorageBackend::load
pub trait StorageBackend: Send {
    /// Returns everything that survived in this backend, once, at
    /// attach time. Later calls may return empty.
    fn load(&mut self) -> (Option<Checkpoint>, Vec<WalEntry>);

    /// Persists one appended log entry.
    fn persist_entry(&mut self, entry: &WalEntry);

    /// Persists a checkpoint (atomically) and compacts the persisted
    /// log up to the checkpoint round.
    fn persist_checkpoint(&mut self, cp: &Checkpoint);

    /// Forces everything appended so far durable (graceful shutdown).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error — at shutdown there *is* a
    /// caller that can report it.
    fn flush(&mut self) -> io::Result<()>;

    /// Storage telemetry snapshot.
    fn counters(&self) -> StorageCounters;
}

/// The in-memory backend: persists nothing, loads nothing. With it the
/// [`DurableStore`] mirror *is* the store — exactly the pre-backend
/// behavior, keeping simulated executions deterministic and
/// filesystem-free.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemBackend;

impl StorageBackend for MemBackend {
    fn load(&mut self) -> (Option<Checkpoint>, Vec<WalEntry>) {
        (None, Vec::new())
    }
    fn persist_entry(&mut self, _entry: &WalEntry) {}
    fn persist_checkpoint(&mut self, _cp: &Checkpoint) {}
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn counters(&self) -> StorageCounters {
        StorageCounters::default()
    }
}

/// The file backend: entries go to an [`icc_wal::Wal`] in `dir` (one
/// record per entry, keyed by the entry's round for segment
/// compaction), checkpoints to an atomic `checkpoint.bin` beside it.
pub struct FileBackend {
    dir: PathBuf,
    wal: Wal,
    max_record_len: u32,
    /// What recovery found, handed out once via [`StorageBackend::load`].
    recovered: Option<(Option<Checkpoint>, Vec<WalEntry>)>,
}

impl fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("wal", &self.wal)
            .finish()
    }
}

impl FileBackend {
    /// Opens (or creates) the data directory and recovers whatever
    /// state survives in it.
    ///
    /// # Errors
    ///
    /// Real I/O errors only (directory not creatable, files not
    /// readable). *Damaged contents are not errors*: torn tails are
    /// truncated, corrupt records/checkpoints discarded and counted —
    /// the recovered state is the last valid prefix.
    pub fn open(dir: &Path, opts: WalOptions) -> io::Result<FileBackend> {
        let (wal, records) = Wal::open(dir, opts)?;
        Ok(FileBackend::finish_open(dir, opts, wal, records))
    }

    /// [`FileBackend::open`] over a caller-supplied segment filesystem
    /// (the disk-fault injection harness).
    ///
    /// # Errors
    ///
    /// Same as [`FileBackend::open`].
    pub fn open_with_fs(
        dir: &Path,
        opts: WalOptions,
        fs: Box<dyn icc_wal::SegmentFs>,
    ) -> io::Result<FileBackend> {
        let (wal, records) = Wal::open_with_fs(dir, opts, fs)?;
        Ok(FileBackend::finish_open(dir, opts, wal, records))
    }

    fn finish_open(
        dir: &Path,
        opts: WalOptions,
        mut wal: Wal,
        records: Vec<icc_wal::RecoveredRecord>,
    ) -> FileBackend {
        let checkpoint =
            match icc_wal::load_checkpoint(dir, opts.max_record_len, wal.counters_mut()) {
                Ok(Some(bytes)) => match decode_from_slice::<Checkpoint>(&bytes) {
                    Ok(cp) => Some(cp),
                    Err(_) => {
                        wal.counters_mut().decode_failures += 1;
                        None
                    }
                },
                Ok(None) => None,
                Err(_) => {
                    wal.counters_mut().io_errors += 1;
                    None
                }
            };
        // A crash can land between checkpoint write and WAL compaction:
        // records the checkpoint already covers are simply skipped.
        let bar = checkpoint.as_ref().map(|cp| cp.round().get());
        let mut entries = Vec::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            if bar.is_some_and(|b| rec.round <= b) {
                continue;
            }
            match decode_from_slice::<WalEntry>(&rec.payload) {
                Ok(entry) => entries.push(entry),
                Err(_) => {
                    // Prefix invariant at the payload layer too: a
                    // record that framed correctly but does not decode
                    // ends the trusted log.
                    let c = wal.counters_mut();
                    c.decode_failures += 1;
                    c.discarded_bytes += records[i..]
                        .iter()
                        .map(|r| r.payload.len() as u64 + 8)
                        .sum::<u64>();
                    break;
                }
            }
        }
        FileBackend {
            dir: dir.to_path_buf(),
            wal,
            max_record_len: opts.max_record_len,
            recovered: Some((checkpoint, entries)),
        }
    }

    /// The data directory this backend persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl StorageBackend for FileBackend {
    fn load(&mut self) -> (Option<Checkpoint>, Vec<WalEntry>) {
        self.recovered.take().unwrap_or_default()
    }

    fn persist_entry(&mut self, entry: &WalEntry) {
        let bytes = encode_to_vec(entry);
        if bytes.len() as u64 + 8 > self.max_record_len as u64 {
            self.wal.counters_mut().io_errors += 1;
            return;
        }
        if self.wal.append(entry.round().get(), &bytes).is_err() {
            self.wal.counters_mut().io_errors += 1;
        }
    }

    fn persist_checkpoint(&mut self, cp: &Checkpoint) {
        let bytes = encode_to_vec(cp);
        if icc_wal::save_checkpoint(&self.dir, &bytes, self.wal.counters_mut()).is_err() {
            self.wal.counters_mut().io_errors += 1;
            // Without a durable checkpoint the covered segments must
            // stay: compacting now would lose the only copy.
            return;
        }
        if self.wal.compact_below(cp.round().get()).is_err() {
            self.wal.counters_mut().io_errors += 1;
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    fn counters(&self) -> StorageCounters {
        self.wal.counters()
    }
}

/// The replica's durable state: at most one checkpoint plus the log of
/// certified artifacts since it, mirrored in memory (for replay) and
/// forwarded to a [`StorageBackend`] (for persistence).
pub struct DurableStore {
    checkpoint: Option<Checkpoint>,
    wal: Vec<WalEntry>,
    /// Highest round whose beacon has been logged (dedup).
    beacon_upto: Round,
    /// `(block hash, notarization present)` pairs already logged.
    logged_blocks: HashSet<(Hash256, bool)>,
    /// Block hashes whose finalization is already logged.
    logged_finalizations: HashSet<Hash256>,
    /// Epoch indices whose transition certificate is already logged.
    logged_transitions: HashSet<u64>,
    wal_appends: u64,
    checkpoints_taken: u64,
    /// Entries (plus one per checkpoint) recovered from the backend at
    /// attach time.
    recovered_entries: u64,
    backend: Box<dyn StorageBackend>,
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableStore")
            .field(
                "checkpoint_round",
                &self.checkpoint.as_ref().map(Checkpoint::round),
            )
            .field("wal_len", &self.wal.len())
            .field("wal_appends", &self.wal_appends)
            .field("checkpoints_taken", &self.checkpoints_taken)
            .field("recovered_entries", &self.recovered_entries)
            .finish_non_exhaustive()
    }
}

impl Default for DurableStore {
    fn default() -> Self {
        DurableStore::new()
    }
}

impl DurableStore {
    /// An empty in-memory store (fresh simulated replica).
    pub fn new() -> DurableStore {
        DurableStore::with_backend(Box::new(MemBackend))
    }

    /// A store over `backend`: whatever the backend recovered becomes
    /// the initial mirror (checkpoint, log, and the dedup sets derived
    /// from them), so a restore right after attach replays it.
    pub fn with_backend(mut backend: Box<dyn StorageBackend>) -> DurableStore {
        let (checkpoint, entries) = backend.load();
        let mut store = DurableStore {
            checkpoint: None,
            wal: Vec::new(),
            beacon_upto: Round::GENESIS,
            logged_blocks: HashSet::new(),
            logged_finalizations: HashSet::new(),
            logged_transitions: HashSet::new(),
            wal_appends: 0,
            checkpoints_taken: 0,
            recovered_entries: 0,
            backend,
        };
        if let Some(cp) = checkpoint {
            store.beacon_upto = cp.round();
            store.logged_blocks.insert((cp.proposal.block.hash(), true));
            store
                .logged_finalizations
                .insert(cp.finalization.block_ref.hash);
            store
                .logged_transitions
                .extend(cp.transitions.iter().map(|t| t.epoch));
            store.checkpoint = Some(cp);
            store.recovered_entries += 1;
        }
        for entry in entries {
            match &entry {
                WalEntry::Beacon(r, _) => store.beacon_upto = store.beacon_upto.max(*r),
                WalEntry::Notarized {
                    proposal,
                    notarization,
                } => {
                    store
                        .logged_blocks
                        .insert((proposal.block.hash(), notarization.is_some()));
                }
                WalEntry::Finalization(f) => {
                    store.logged_finalizations.insert(f.block_ref.hash);
                }
                WalEntry::Committed { .. } => {}
                WalEntry::EpochTransition(t) => {
                    store.logged_transitions.insert(t.epoch);
                }
            }
            store.wal.push(entry);
            store.recovered_entries += 1;
        }
        store
    }

    /// A store persisted to `dir` through a [`FileBackend`].
    ///
    /// # Errors
    ///
    /// Real I/O errors from opening the directory; damaged contents
    /// recover to the last valid prefix instead of erroring.
    pub fn file(dir: &Path, opts: WalOptions) -> io::Result<DurableStore> {
        Ok(DurableStore::with_backend(Box::new(FileBackend::open(
            dir, opts,
        )?)))
    }

    /// Logs a round's beacon value (at most once per round).
    pub fn append_beacon(&mut self, round: Round, value: BeaconValue) {
        if round > self.beacon_upto {
            self.beacon_upto = round;
            let entry = WalEntry::Beacon(round, value);
            self.backend.persist_entry(&entry);
            self.wal.push(entry);
            self.wal_appends += 1;
        }
    }

    /// Logs a block body and (optionally) its notarization. Re-appending
    /// the same `(block, has-notarization)` shape is a no-op, so a block
    /// first logged bare can later be upgraded with its certificate.
    pub fn append_block(&mut self, proposal: BlockProposal, notarization: Option<Notarization>) {
        let key = (proposal.block.hash(), notarization.is_some());
        if self.logged_blocks.insert(key) {
            let entry = WalEntry::Notarized {
                proposal,
                notarization,
            };
            self.backend.persist_entry(&entry);
            self.wal.push(entry);
            self.wal_appends += 1;
        }
    }

    /// Logs a finalization certificate (at most once per block).
    pub fn append_finalization(&mut self, f: Finalization) {
        if self.logged_finalizations.insert(f.block_ref.hash) {
            let entry = WalEntry::Finalization(f);
            self.backend.persist_entry(&entry);
            self.wal.push(entry);
            self.wal_appends += 1;
        }
    }

    /// Logs an epoch-transition certificate (at most once per epoch).
    pub fn append_epoch_transition(&mut self, t: EpochTransition) {
        if self.logged_transitions.insert(t.epoch) {
            let entry = WalEntry::EpochTransition(t);
            self.backend.persist_entry(&entry);
            self.wal.push(entry);
            self.wal_appends += 1;
        }
    }

    /// Logs the command digests a block committed.
    pub fn append_committed(&mut self, round: Round, digests: Vec<Hash256>) {
        if digests.is_empty() {
            return;
        }
        let entry = WalEntry::Committed { round, digests };
        self.backend.persist_entry(&entry);
        self.wal.push(entry);
        self.wal_appends += 1;
    }

    /// Installs a checkpoint and compacts the log: entries at or below
    /// the checkpoint round are dropped (the checkpoint carries the
    /// beacon base itself). The backend persists the checkpoint
    /// atomically and compacts its own log to match.
    pub fn install_checkpoint(&mut self, cp: Checkpoint) {
        let bar = cp.round();
        self.wal.retain(|e| e.round() > bar);
        self.backend.persist_checkpoint(&cp);
        self.checkpoint = Some(cp);
        self.checkpoints_taken += 1;
    }

    /// The installed checkpoint, if any.
    pub fn checkpoint(&self) -> Option<&Checkpoint> {
        self.checkpoint.as_ref()
    }

    /// The log entries since the checkpoint, in append order.
    pub fn wal(&self) -> &[WalEntry] {
        &self.wal
    }

    /// Current number of log entries (post-compaction).
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Lifetime count of log appends by this incarnation (recovered
    /// entries not included; see
    /// [`recovered_entries`](Self::recovered_entries)).
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends
    }

    /// Lifetime count of checkpoints taken.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Checkpoint + entries recovered from the backend at attach time.
    pub fn recovered_entries(&self) -> u64 {
        self.recovered_entries
    }

    /// The store's round frontier: the highest round any durable record
    /// covers (checkpoint or log). `Round::GENESIS` when empty.
    pub fn frontier(&self) -> Round {
        let cp = self
            .checkpoint
            .as_ref()
            .map_or(Round::GENESIS, Checkpoint::round);
        self.wal.iter().map(WalEntry::round).fold(cp, Round::max)
    }

    /// Whether nothing durable has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.checkpoint.is_none() && self.wal.is_empty()
    }

    /// Forces everything appended so far durable (graceful shutdown).
    ///
    /// # Errors
    ///
    /// The backend's I/O error, if flushing failed.
    pub fn flush(&mut self) -> io::Result<()> {
        self.backend.flush()
    }

    /// The backend's storage telemetry (all zeros for [`MemBackend`]).
    pub fn storage_counters(&self) -> StorageCounters {
        self.backend.counters()
    }
}
