//! Observable events emitted by a consensus node.
//!
//! These form the node's output trace in the simulator: the atomic
//! broadcast output itself ([`NodeEvent::Committed`]) plus progress
//! markers the experiment harnesses use to measure round times,
//! latencies and leader statistics.

use icc_crypto::Hash256;
use icc_types::block::HashedBlock;
use icc_types::{NodeIndex, Rank, Round, SimDuration};

/// One observable event in a node's execution.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEvent {
    /// The node computed the round's beacon and entered the round.
    EnteredRound {
        /// The round entered.
        round: Round,
        /// This node's rank for the round; `None` when it is not a
        /// member of the round's epoch (observer).
        my_rank: Option<Rank>,
        /// The round's leader (the rank-0 party).
        leader: NodeIndex,
    },
    /// The node crossed an epoch boundary: from this round on the new
    /// epoch's member set and reshared beacon keys govern.
    EpochEntered {
        /// The boundary round (the new epoch's first round).
        round: Round,
        /// Index of the epoch entered.
        epoch: u64,
    },
    /// The node broadcast its own proposal for a round.
    Proposed {
        /// The proposal's round.
        round: Round,
        /// Hash of the proposed block.
        hash: Hash256,
    },
    /// The node finished a round with a notarized block (Fig. 1 exit).
    RoundFinished {
        /// The finished round.
        round: Round,
        /// Time from entering the round to finishing it.
        duration: SimDuration,
        /// Rank of the proposer of the notarized block the node saw
        /// first; 0 means the leader's block won.
        notarized_rank: Rank,
    },
    /// A block became part of the committed chain — the atomic broadcast
    /// output. Emitted once per block, in chain order; payload command
    /// sequence across all `Committed` events is the node's output
    /// sequence.
    Committed {
        /// The committed block.
        block: HashedBlock,
    },
    /// The node fast-forwarded via a certified catch-up package: rounds
    /// in `(from_round, to_round)` were skipped over (state sync), the
    /// package block of `to_round` was committed.
    CaughtUp {
        /// `kmax` before the catch-up.
        from_round: Round,
        /// `kmax` after (the package block's round).
        to_round: Round,
    },
}

impl NodeEvent {
    /// The committed block, if this is a commit event.
    pub fn as_committed(&self) -> Option<&HashedBlock> {
        match self {
            NodeEvent::Committed { block } => Some(block),
            _ => None,
        }
    }

    /// The round this event pertains to.
    pub fn round(&self) -> Round {
        match self {
            NodeEvent::EnteredRound { round, .. }
            | NodeEvent::EpochEntered { round, .. }
            | NodeEvent::Proposed { round, .. }
            | NodeEvent::RoundFinished { round, .. } => *round,
            NodeEvent::Committed { block } => block.round(),
            NodeEvent::CaughtUp { to_round, .. } => *to_round,
        }
    }
}
