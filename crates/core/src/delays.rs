//! The protocol delay functions `Δprop` and `Δntry` (paper §3.5) and the
//! adaptive variant for an unknown delay bound (§1).
//!
//! * `Δprop : rank → time` delays a party's own proposal by its rank, so
//!   that when the leader is honest and the network synchronous nobody
//!   else floods the network with proposals;
//! * `Δntry : rank → time` delays *supporting* (echoing/notarization-
//!   sharing) a rank-`r` block, giving lower ranks priority.
//!
//! The liveness requirement is `2δ + Δprop(0) ≤ Δntry(1)` (Lemma
//! *Liveness*, condition (v)); the paper's recommended instantiation
//! (eq. 2) is
//!
//! ```text
//! Δprop(r) = 2·Δbnd·r          Δntry(r) = 2·Δbnd·r + ε
//! ```
//!
//! which satisfies the requirement whenever the actual network delay is
//! bounded by `δ ≤ Δbnd`. The parameter `ε` is a *governor*: zero gives
//! maximum speed (optimistic responsiveness), a positive value paces the
//! chain (the Internet Computer runs with a governor — its small subnets
//! finalize ≈1 block/s, far slower than the network allows; the Table-1
//! harness sets `ε` accordingly).

use icc_types::{Rank, SimDuration};

/// A (possibly adaptive) source of the two delay functions.
pub trait Delays {
    /// Delay before proposing, given own rank.
    fn prop(&self, rank: Rank) -> SimDuration;

    /// Delay before supporting a rank-`r` block.
    fn ntry(&self, rank: Rank) -> SimDuration;

    /// Feedback after each finished round: how long the round took and
    /// whether the round's leader block was the one notarized. Static
    /// policies ignore this; the adaptive policy tunes `Δbnd` with it.
    fn observe_round(&mut self, duration: SimDuration, leader_block_won: bool) {
        let _ = (duration, leader_block_won);
    }

    /// The current `Δbnd` estimate (for diagnostics and tests).
    fn delta_bound(&self) -> SimDuration;
}

/// The paper's recommended static delay functions (eq. 2) with explicit
/// `Δbnd` and governor `ε`.
#[derive(Debug, Clone, Copy)]
pub struct StaticDelays {
    delta_bound: SimDuration,
    epsilon: SimDuration,
}

impl StaticDelays {
    /// Creates the delay policy `Δprop(r) = 2·Δbnd·r`,
    /// `Δntry(r) = 2·Δbnd·r + ε`.
    pub fn new(delta_bound: SimDuration, epsilon: SimDuration) -> StaticDelays {
        StaticDelays {
            delta_bound,
            epsilon,
        }
    }

    /// A policy with `ε = 0` (fastest; used by the latency experiments).
    pub fn responsive(delta_bound: SimDuration) -> StaticDelays {
        StaticDelays::new(delta_bound, SimDuration::ZERO)
    }
}

impl Delays for StaticDelays {
    fn prop(&self, rank: Rank) -> SimDuration {
        self.delta_bound * 2 * u64::from(rank.get())
    }

    fn ntry(&self, rank: Rank) -> SimDuration {
        self.delta_bound * 2 * u64::from(rank.get()) + self.epsilon
    }

    fn delta_bound(&self) -> SimDuration {
        self.delta_bound
    }
}

/// An adaptive policy for an *unknown* network-delay bound (§1: "the ICC
/// protocols can be modified to adaptively adjust to an unknown
/// communication-delay bound. However, some care must be taken.").
///
/// Strategy (standard multiplicative-increase, cautious-decrease):
///
/// * if a round ends **without** the leader's block winning, or takes
///   longer than `4·Δbnd` (the synchronous-honest-leader envelope is
///   `2δ + ε ≤ 2Δbnd + ε`), the current guess is presumed too small:
///   `Δbnd ← 2·Δbnd` (capped);
/// * after `shrink_after` consecutive fast leader-won rounds, `Δbnd`
///   decays by 25% (floored) — the "care" the paper mentions: shrinking
///   too eagerly oscillates and sacrifices liveness, so decrease is slow
///   and bounded below.
#[derive(Debug, Clone)]
pub struct AdaptiveDelays {
    current: SimDuration,
    floor: SimDuration,
    cap: SimDuration,
    epsilon: SimDuration,
    fast_streak: u32,
    shrink_after: u32,
}

impl AdaptiveDelays {
    /// Starts adapting from `initial`, never going below `floor` nor
    /// above `cap`.
    ///
    /// # Panics
    ///
    /// Panics unless `floor <= initial <= cap`.
    pub fn new(initial: SimDuration, floor: SimDuration, cap: SimDuration) -> AdaptiveDelays {
        assert!(
            floor <= initial && initial <= cap,
            "need floor <= initial <= cap"
        );
        AdaptiveDelays {
            current: initial,
            floor,
            cap,
            epsilon: SimDuration::ZERO,
            fast_streak: 0,
            shrink_after: 8,
        }
    }

    /// Sets the governor `ε`.
    pub fn with_epsilon(mut self, epsilon: SimDuration) -> AdaptiveDelays {
        self.epsilon = epsilon;
        self
    }
}

impl Delays for AdaptiveDelays {
    fn prop(&self, rank: Rank) -> SimDuration {
        self.current * 2 * u64::from(rank.get())
    }

    fn ntry(&self, rank: Rank) -> SimDuration {
        self.current * 2 * u64::from(rank.get()) + self.epsilon
    }

    fn observe_round(&mut self, duration: SimDuration, leader_block_won: bool) {
        let slow = !leader_block_won || duration > self.current * 4 + self.epsilon;
        if slow {
            self.fast_streak = 0;
            self.current = (self.current * 2).min(self.cap);
        } else {
            self.fast_streak += 1;
            if self.fast_streak >= self.shrink_after {
                self.fast_streak = 0;
                self.current = (self.current - self.current / 4).max(self.floor);
            }
        }
    }

    fn delta_bound(&self) -> SimDuration {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn static_matches_equation_2() {
        let d = StaticDelays::new(ms(100), ms(30));
        assert_eq!(d.prop(Rank::new(0)), ms(0));
        assert_eq!(d.prop(Rank::new(1)), ms(200));
        assert_eq!(d.prop(Rank::new(3)), ms(600));
        assert_eq!(d.ntry(Rank::new(0)), ms(30));
        assert_eq!(d.ntry(Rank::new(1)), ms(230));
    }

    #[test]
    fn static_satisfies_liveness_condition() {
        // 2δ + Δprop(0) <= Δntry(1) whenever δ <= Δbnd.
        let delta_bnd = ms(50);
        let d = StaticDelays::responsive(delta_bnd);
        let delta = delta_bnd; // worst allowed network delay
        assert!(delta * 2 + d.prop(Rank::new(0)) <= d.ntry(Rank::new(1)));
    }

    #[test]
    fn delays_are_non_decreasing_in_rank() {
        let d = StaticDelays::new(ms(7), ms(3));
        for r in 0..20u32 {
            assert!(d.prop(Rank::new(r)) <= d.prop(Rank::new(r + 1)));
            assert!(d.ntry(Rank::new(r)) <= d.ntry(Rank::new(r + 1)));
        }
    }

    #[test]
    fn adaptive_grows_on_slow_rounds() {
        let mut d = AdaptiveDelays::new(ms(10), ms(5), ms(1000));
        d.observe_round(ms(500), false);
        assert_eq!(d.delta_bound(), ms(20));
        d.observe_round(ms(500), false);
        assert_eq!(d.delta_bound(), ms(40));
    }

    #[test]
    fn adaptive_growth_is_capped() {
        let mut d = AdaptiveDelays::new(ms(10), ms(5), ms(25));
        d.observe_round(ms(500), false);
        d.observe_round(ms(500), false);
        assert_eq!(d.delta_bound(), ms(25));
    }

    #[test]
    fn adaptive_shrinks_slowly_after_streak() {
        let mut d = AdaptiveDelays::new(ms(100), ms(10), ms(1000));
        for _ in 0..7 {
            d.observe_round(ms(50), true);
        }
        assert_eq!(
            d.delta_bound(),
            ms(100),
            "no shrink before the streak completes"
        );
        d.observe_round(ms(50), true);
        assert_eq!(d.delta_bound(), ms(75));
    }

    #[test]
    fn adaptive_shrink_floored_and_streak_resets_on_slow() {
        let mut d = AdaptiveDelays::new(ms(12), ms(10), ms(1000));
        for _ in 0..8 {
            d.observe_round(ms(1), true);
        }
        assert_eq!(d.delta_bound(), ms(10), "floored");
        for _ in 0..7 {
            d.observe_round(ms(1), true);
        }
        d.observe_round(ms(500), false); // resets streak, doubles
        assert_eq!(d.delta_bound(), ms(20));
    }

    #[test]
    fn adaptive_slow_duration_alone_triggers_growth() {
        let mut d = AdaptiveDelays::new(ms(10), ms(5), ms(1000));
        // Leader won but the round took far longer than 4·Δbnd.
        d.observe_round(ms(100), true);
        assert_eq!(d.delta_bound(), ms(20));
    }

    #[test]
    #[should_panic(expected = "floor <= initial <= cap")]
    fn adaptive_rejects_bad_bounds() {
        AdaptiveDelays::new(ms(1), ms(5), ms(10));
    }
}
