//! Certified catch-up: the package a lagging replica fetches to
//! fast-forward, and the recovery observability counters.
//!
//! A replica that restarts (or heals from a long partition) can be many
//! rounds behind. Re-flooding every historical artifact would be both
//! expensive and — under the gossip layer's advert dedup — impossible:
//! peers only advertise *live* artifacts. Instead the replica fetches a
//! [`CatchUpPackage`]: the sender's latest finalized block plus the
//! *certificates* (notarization + finalization) proving it, and the
//! random-beacon chain segment the requester is missing.
//!
//! Safety does not rest on trusting the sender. Every certificate is
//! verified against the subnet's public keys before anything is
//! installed (see `Pool::verify_and_install_catch_up`): the
//! finalization proves `n − t` parties finalized the block (P2 then
//! pins the whole prefix), the notarization lets honest children
//! validate against it, the authenticator pins the proposer, and each
//! beacon value is the unique threshold signature over its predecessor
//! — a forged or truncated package from a Byzantine peer is rejected
//! wholesale and the requester retries elsewhere.

//!
//! With dynamic membership the package also certifies *across epoch
//! boundaries*: a requester that slept through one or more reshares
//! receives one [`EpochTransition`] per crossed boundary — a
//! finalization from the *outgoing* epoch, verified under that epoch's
//! signer set — forming a certificate chain from the requester's last
//! known epoch to the epoch of the packaged block. A forged link (bad
//! signature, wrong signer set, out-of-epoch round) or a missing link
//! rejects the whole package.

use icc_crypto::beacon::BeaconValue;
use icc_types::codec::{CodecError, Decode, Encode, Reader};
use icc_types::messages::{BlockProposal, Finalization, Notarization};
use icc_types::Round;
use std::fmt;

/// One link of the cross-epoch certificate chain: a certified block of
/// the epoch *before* `epoch`, vouching for the handoff into `epoch`.
///
/// Both certificates reference the same block — the highest finalized
/// round of the outgoing epoch — and are verified under the *outgoing*
/// epoch's member set and quorum (the keys the requester can already
/// trust), which is what lets a replica walk forward through reshares
/// it slept through.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTransition {
    /// The epoch being entered (the certificates are from `epoch − 1`).
    pub epoch: u64,
    /// Notarization of the handoff block.
    pub notarization: Notarization,
    /// Finalization of the handoff block — the actual handoff
    /// certificate.
    pub finalization: Finalization,
}

impl EpochTransition {
    /// The round of the certified handoff block.
    pub fn round(&self) -> Round {
        self.finalization.block_ref.round
    }

    /// Simulator-metered wire size (8-byte epoch + both certificates).
    pub fn encoded_len(&self) -> usize {
        8 + self.notarization.encoded_len() + self.finalization.encoded_len()
    }
}

impl Encode for EpochTransition {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.notarization.encode(buf);
        self.finalization.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        8 + Encode::encoded_len(&self.notarization) + Encode::encoded_len(&self.finalization)
    }
}

impl Decode for EpochTransition {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EpochTransition {
            epoch: u64::decode(r)?,
            notarization: Notarization::decode(r)?,
            finalization: Finalization::decode(r)?,
        })
    }
}

/// A certified fast-forward package: the serving replica's latest
/// finalized block, the certificates proving it, and the beacon chain
/// segment `(have_round, latest]` the requester is missing.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchUpPackage {
    /// The latest finalized block with its authenticator
    /// (`parent_notarization` is not needed — the finalization certifies
    /// the whole prefix — and is left `None`).
    pub proposal: BlockProposal,
    /// The `n − t` notarization of that block (children validate
    /// against it).
    pub notarization: Notarization,
    /// The `n − t` finalization of that block — the actual certificate
    /// of catch-up safety.
    pub finalization: Finalization,
    /// Consecutive beacon values starting at the requester's
    /// `have_round + 1`, extending at least one round past the
    /// finalized block (needed to enter the next round).
    pub beacons: Vec<(Round, BeaconValue)>,
    /// The cross-epoch certificate chain: one entry per epoch boundary
    /// between the requester's `have_round` and the packaged block, in
    /// ascending epoch order. Empty when no boundary is crossed.
    pub transitions: Vec<EpochTransition>,
}

impl CatchUpPackage {
    /// The round of the packaged finalized block.
    pub fn round(&self) -> Round {
        self.proposal.block.round()
    }

    /// Approximate wire size in bytes (metered as catch-up traffic).
    ///
    /// This is the *simulator metering* size: beacon entries are charged
    /// 17 bytes (8-byte round + tag + 8-byte signature value), matching
    /// what a compact deployment encoding would cost. The byte-exact
    /// transport encoding (the [`Encode`] impl below, used by `icc-net`)
    /// carries full 48-byte signature wire forms, so its length differs;
    /// metering stays on this method so historical traffic numbers are
    /// not perturbed.
    pub fn encoded_len(&self) -> usize {
        // Each beacon entry: 8-byte round + tag + 8-byte signature value.
        self.proposal.encoded_len()
            + self.notarization.encoded_len()
            + self.finalization.encoded_len()
            + self.beacons.len() * 17
            + self
                .transitions
                .iter()
                .map(EpochTransition::encoded_len)
                .sum::<usize>()
    }
}

impl Encode for CatchUpPackage {
    /// Canonical transport encoding: proposal, notarization,
    /// finalization, then the beacon segment as a counted sequence of
    /// `(round, value)` pairs.
    fn encode(&self, buf: &mut Vec<u8>) {
        self.proposal.encode(buf);
        self.notarization.encode(buf);
        self.finalization.encode(buf);
        (self.beacons.len() as u64).encode(buf);
        for (round, value) in &self.beacons {
            round.encode(buf);
            value.encode(buf);
        }
        (self.transitions.len() as u64).encode(buf);
        for t in &self.transitions {
            t.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        let beacons: usize = self
            .beacons
            .iter()
            .map(|(r, v)| Encode::encoded_len(r) + Encode::encoded_len(v))
            .sum();
        let transitions: usize = self.transitions.iter().map(Encode::encoded_len).sum();
        self.proposal.encoded_len()
            + Encode::encoded_len(&self.notarization)
            + Encode::encoded_len(&self.finalization)
            + 8
            + beacons
            + 8
            + transitions
    }
}

impl Decode for CatchUpPackage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let proposal = BlockProposal::decode(r)?;
        let notarization = Notarization::decode(r)?;
        let finalization = Finalization::decode(r)?;
        let count = u64::decode(r)?;
        if count > icc_types::codec::MAX_LEN {
            return Err(CodecError::LengthOverflow { len: count });
        }
        let mut beacons = Vec::with_capacity((count as usize).min(1024));
        for _ in 0..count {
            beacons.push((Round::decode(r)?, BeaconValue::decode(r)?));
        }
        let tcount = u64::decode(r)?;
        if tcount > icc_types::codec::MAX_LEN {
            return Err(CodecError::LengthOverflow { len: tcount });
        }
        let mut transitions = Vec::with_capacity((tcount as usize).min(1024));
        for _ in 0..tcount {
            transitions.push(EpochTransition::decode(r)?);
        }
        Ok(CatchUpPackage {
            proposal,
            notarization,
            finalization,
            beacons,
            transitions,
        })
    }
}

/// Why a catch-up package was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatchUpError {
    /// The package's round is not ahead of this replica's `kmax`.
    Stale,
    /// The certificates do not all reference the packaged block.
    Mismatched,
    /// The proposer's authenticator failed verification.
    BadAuthenticator,
    /// The notarization aggregate failed verification.
    BadNotarization,
    /// The finalization aggregate failed verification.
    BadFinalization,
    /// The beacon segment is non-consecutive, unanchored, or contains a
    /// value that fails threshold verification.
    BadBeacon,
    /// The beacon segment stops before the round after the finalized
    /// block, so the requester could not enter the next round.
    Truncated,
    /// An epoch-transition certificate failed verification: mismatched
    /// references, a round outside the outgoing epoch, out-of-order
    /// links, or a signature that does not verify under the outgoing
    /// epoch's signer set.
    BadTransition,
    /// The package crosses one or more epoch boundaries but is missing
    /// the transition certificate for at least one of them.
    MissingTransition,
}

impl fmt::Display for CatchUpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CatchUpError::Stale => "package not ahead of local kmax",
            CatchUpError::Mismatched => "certificates reference different blocks",
            CatchUpError::BadAuthenticator => "authenticator failed verification",
            CatchUpError::BadNotarization => "notarization failed verification",
            CatchUpError::BadFinalization => "finalization failed verification",
            CatchUpError::BadBeacon => "beacon segment invalid",
            CatchUpError::Truncated => "beacon segment truncated",
            CatchUpError::BadTransition => "epoch transition certificate invalid",
            CatchUpError::MissingTransition => "epoch transition certificate missing",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CatchUpError {}

icc_telemetry::counter_set! {
    /// Per-replica recovery counters, surfaced through
    /// [`ConsensusCore::recovery_stats`](crate::ConsensusCore::recovery_stats)
    /// and mirrored into `icc-sim`'s [`RecoveryCounters`](icc_sim::RecoveryCounters).
    ///
    /// Generated by [`icc_telemetry::counter_set!`], so `merge` can
    /// never drift from the field list.
    pub struct RecoveryStats {
        /// Times this replica restarted from durable state.
        pub restarts: u64,
        /// Sum over catch-ups of how many rounds behind `kmax` was.
        pub rounds_behind_total: u64,
        /// Catch-up packages verified and applied.
        pub catch_up_applied: u64,
        /// Catch-up packages rejected (forged, truncated, or stale).
        pub catch_up_rejected: u64,
        /// Bytes of catch-up packages received (applied or rejected).
        pub catch_up_bytes: u64,
        /// Microseconds from detecting lag to applying a package,
        /// summed over catch-ups (divide by `catch_up_applied` for the
        /// mean).
        pub catch_up_latency_us: u64,
        /// Entries appended to the write-ahead log.
        pub wal_appends: u64,
        /// Checkpoints taken.
        pub checkpoints: u64,
        /// Signature verifications performed while replaying durable
        /// state on restore. The whole point of the trusted replay path
        /// is that this stays **zero** — the durability tests and the
        /// `net_cluster` restart assertion enforce it.
        pub restore_verifications: u64,
        /// Catch-up packages applied whose certificate chain crossed at
        /// least one epoch boundary (each chain link verified under the
        /// outgoing epoch's signer set).
        pub cross_epoch_catch_ups: u64,
        /// Epoch boundaries this replica activated (locally finalized
        /// its way across, or crossed via a certified catch-up).
        pub epoch_transitions: u64,
    }
}

impl From<RecoveryStats> for icc_sim::RecoveryCounters {
    fn from(s: RecoveryStats) -> icc_sim::RecoveryCounters {
        icc_sim::RecoveryCounters {
            restarts: s.restarts,
            rounds_behind_total: s.rounds_behind_total,
            catch_up_applied: s.catch_up_applied,
            catch_up_rejected: s.catch_up_rejected,
            catch_up_bytes: s.catch_up_bytes,
            catch_up_latency_us: s.catch_up_latency_us,
            wal_appends: s.wal_appends,
            checkpoints: s.checkpoints,
            restore_verifications: s.restore_verifications,
            cross_epoch_catch_ups: s.cross_epoch_catch_ups,
            epoch_transitions: s.epoch_transitions,
        }
    }
}
