//! Protocol ICC0: the Tree-Building Subprotocol (Fig. 1) and the
//! Finalization Subprotocol (Fig. 2), as a sans-IO state machine.
//!
//! [`ConsensusCore`] owns a party's pool and per-round state and is
//! driven by four entry points — [`start`](ConsensusCore::start),
//! [`on_message`](ConsensusCore::on_message),
//! [`on_wakeup`](ConsensusCore::on_wakeup) (timers) and
//! [`on_command`](ConsensusCore::on_command) (client input). Each entry
//! point returns a [`Step`]: messages to broadcast, observable events,
//! and the next time the party wants to be woken. The transport is
//! external — the simulator broadcasts directly for ICC0, while the
//! gossip (ICC1) and erasure-coded (ICC2) layers wrap the same core.
//!
//! The mapping to Figure 1 is direct:
//!
//! * *"wait for t + 1 shares of the round-k random beacon"* — the
//!   beacon phase in `progress`, which also pipelines this party's share
//!   for round `k + 1` the moment beacon `k` is computed;
//! * clause **(a)** (finish the round) — `try_finish_round`;
//! * clause **(b)** (propose after `Δprop(rank_me)`) — `try_propose`;
//! * clause **(c)** (echo / notarization-share / disqualify after
//!   `Δntry(r)`) — `try_support`;
//! * Figure 2 — `run_finalization` (tracks `kmax`, combines and
//!   broadcasts finalizations, outputs committed payloads).

use crate::artifacts;
use crate::byzantine::Behavior;
use crate::delays::Delays;
use crate::events::NodeEvent;
use crate::keys::{NodeKeys, PublicSetup};
use crate::pool::Pool;
use crate::recovery::{CatchUpError, CatchUpPackage, EpochTransition, RecoveryStats};
use crate::storage::{Checkpoint, DurableStore, WalEntry};
use crate::telemetry::NodeTelemetry;
use icc_crypto::beacon::RankPermutation;
use icc_crypto::{hash_parts, Hash256};
use icc_telemetry::{SpanEvent, SpanKind};
use icc_types::block::{Block, HashedBlock, Payload};
use icc_types::messages::{Beacon, BlockProposal, BlockRef, ConsensusMessage};
use icc_types::{Command, Rank, Round, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Limits on self-built block payloads.
#[derive(Debug, Clone, Copy)]
pub struct BlockPolicy {
    /// Maximum commands per proposed block.
    pub max_commands: usize,
    /// Maximum total command bytes per proposed block.
    pub max_bytes: usize,
    /// If set, purge pool artifacts more than this many rounds below
    /// the committed round — the garbage-collection optimization §3.1
    /// alludes to. `None` keeps everything (the paper's literal model).
    pub purge_depth: Option<u64>,
}

impl Default for BlockPolicy {
    fn default() -> Self {
        BlockPolicy {
            max_commands: 1000,
            max_bytes: 4 << 20,
            purge_depth: None,
        }
    }
}

/// The result of driving the core one step.
#[derive(Debug, Default)]
pub struct Step {
    /// Messages to disseminate to all parties.
    pub broadcasts: Vec<ConsensusMessage>,
    /// Targeted messages — only corrupt behaviors use these (an honest
    /// ICC0 party *only* broadcasts, §3.1); e.g. a split equivocation
    /// sends different blocks to different parties.
    pub sends: Vec<(icc_types::NodeIndex, ConsensusMessage)>,
    /// Observable events (commits, round markers).
    pub events: Vec<NodeEvent>,
    /// The next instant the core wants `on_wakeup` called, if any.
    pub next_wakeup: Option<SimTime>,
}

/// Per-round volatile state (Fig. 1 loop variables).
#[derive(Debug)]
struct RoundState {
    t0: SimTime,
    perm: RankPermutation,
    /// This party's rank in the round's permutation; `None` when it is
    /// not a member of the round's epoch (it then observes — tracks the
    /// round, echoes blocks — but never proposes or signs).
    my_rank: Option<Rank>,
    /// `N`: the ranks this party broadcast a notarization share for,
    /// with the block it supported (at most one per rank).
    n_set: HashMap<u32, Hash256>,
    /// `D`: disqualified ranks (caught equivocating).
    d_set: HashSet<u32>,
    proposed: bool,
    done: bool,
    /// Blocks already echoed (each block echoed at most once; at most
    /// two per rank reach this set by the `N`/`D` guards).
    echoed: HashSet<Hash256>,
    /// Whether the flight recorder has logged the first valid proposal
    /// of this round (telemetry, not protocol state).
    proposal_seen: bool,
}

impl RoundState {
    fn new(t0: SimTime, perm: RankPermutation, my_rank: Option<Rank>) -> RoundState {
        RoundState {
            t0,
            perm,
            my_rank,
            n_set: HashMap::new(),
            d_set: HashSet::new(),
            proposed: false,
            done: false,
            echoed: HashSet::new(),
            proposal_seen: false,
        }
    }
}

/// A party running Protocol ICC0.
pub struct ConsensusCore {
    keys: NodeKeys,
    delays: Box<dyn Delays + Send>,
    behavior: Behavior,
    policy: BlockPolicy,
    pool: Pool,
    round: Round,
    rstate: Option<RoundState>,
    /// Highest round our beacon share has been broadcast for.
    beacon_share_sent_upto: Round,
    /// Fig. 2's `kmax`: last committed round.
    kmax: Round,
    notarizations_broadcast: HashSet<Hash256>,
    finalizations_broadcast: HashSet<Hash256>,
    /// Archived epoch-transition certificates by epoch index: the
    /// handoff finalization of each boundary the finalized chain has
    /// crossed. Volatile (rebuilt from the store on restore); the
    /// source this replica serves cross-epoch catch-up packages from.
    transition_certs: BTreeMap<u64, EpochTransition>,
    /// Client input queue with cached command hashes (hashing large
    /// commands once, not once per proposal).
    pending: VecDeque<(Command, Hash256)>,
    /// Digests currently in `pending`, for O(1) submission dedup.
    pending_digests: HashSet<Hash256>,
    committed_cmds: HashSet<Hash256>,
    started: bool,
    /// The replica's "disk": checkpoint + WAL surviving `crash()`.
    store: DurableStore,
    /// Frontier round of the store at the last restore (0 when the
    /// replica never restored). Diagnostics for the durability tests
    /// and the `replica` REPORT line, not protocol state.
    last_recovered_round: u64,
    /// Recovery observability counters (restarts, catch-ups, …).
    recovery: RecoveryStats,
    /// Protocol metrics + flight recorder. Observability, not replica
    /// state: survives `crash()`/`restore()` like an external monitor.
    telemetry: NodeTelemetry,
    /// When each still-uncommitted round was entered (keyed by round
    /// number), feeding the finalization-latency histogram.
    entered_at: HashMap<u64, SimTime>,
    /// Take a checkpoint every this many committed rounds.
    checkpoint_interval: u64,
    /// Ablation switch: when set, the beacon share for round `k + 1` is
    /// only broadcast on *entering* round `k + 1` instead of the moment
    /// beacon `k` is computed. Costs one extra δ per round (see the
    /// `fig_ablation_pipelining` experiment).
    disable_beacon_pipelining: bool,
    /// Scale-out switch: when set, a party that combines the round
    /// beacon also broadcasts the *combined value* (self-certifying —
    /// threshold signatures are unique, so one group-key verification
    /// replaces `t + 1` share verifications at every receiver). Used by
    /// the aggregator-routed gossip mode, where shares travel to a few
    /// aggregators instead of flooding.
    broadcast_beacon_values: bool,
    /// Highest round whose combined beacon value this party broadcast.
    beacon_value_sent_upto: Round,
}

impl fmt::Debug for ConsensusCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConsensusCore({} round {} kmax {})",
            self.keys.index, self.round, self.kmax
        )
    }
}

fn command_hash(cmd: &Command) -> Hash256 {
    cmd.digest()
}

impl ConsensusCore {
    /// Creates a party from its key material, delay policy and behavior
    /// profile.
    pub fn new(keys: NodeKeys, delays: impl Delays + Send + 'static, behavior: Behavior) -> Self {
        let pool = Pool::new(Arc::clone(&keys.setup));
        let mut telemetry = NodeTelemetry::default();
        telemetry.anomalies.set_node(keys.index.get());
        ConsensusCore {
            keys,
            delays: Box::new(delays),
            behavior,
            policy: BlockPolicy::default(),
            pool,
            round: Round::new(1),
            rstate: None,
            beacon_share_sent_upto: Round::GENESIS,
            kmax: Round::GENESIS,
            notarizations_broadcast: HashSet::new(),
            finalizations_broadcast: HashSet::new(),
            transition_certs: BTreeMap::new(),
            pending: VecDeque::new(),
            pending_digests: HashSet::new(),
            committed_cmds: HashSet::new(),
            started: false,
            store: DurableStore::new(),
            last_recovered_round: 0,
            recovery: RecoveryStats::default(),
            telemetry,
            entered_at: HashMap::new(),
            checkpoint_interval: 8,
            disable_beacon_pipelining: false,
            broadcast_beacon_values: false,
            beacon_value_sent_upto: Round::GENESIS,
        }
    }

    /// Disables the beacon-share pipelining of Fig. 1 (ablation).
    pub fn without_beacon_pipelining(mut self) -> Self {
        self.disable_beacon_pipelining = true;
        self
    }

    /// Broadcasts combined beacon *values* in addition to shares, so
    /// receivers can verify one group signature instead of `t + 1`
    /// shares. Required by the aggregator-routed gossip mode.
    pub fn with_beacon_value_broadcast(mut self) -> Self {
        self.broadcast_beacon_values = true;
        self
    }

    /// Overrides the block payload limits.
    pub fn with_block_policy(mut self, policy: BlockPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the replica's durable store — the hook that makes a
    /// core *file-backed*: attach a store over
    /// [`FileBackend`](crate::storage::FileBackend) and everything the
    /// replica certifies is persisted as it happens. Call before
    /// [`start`](Self::start); a non-empty store (a data directory that
    /// survived a crash) makes `start` restore from it instead of
    /// booting fresh.
    pub fn with_store(mut self, store: DurableStore) -> Self {
        self.store = store;
        self
    }

    /// Overrides how many committed rounds elapse between checkpoints
    /// (default 8). Checkpoints compact the WAL; a huge interval means
    /// longer restores, a tiny one more checkpoint work.
    pub fn with_checkpoint_interval(mut self, rounds: u64) -> Self {
        self.checkpoint_interval = rounds.max(1);
        self
    }

    /// This party's index.
    pub fn index(&self) -> icc_types::NodeIndex {
        self.keys.index
    }

    /// This party's behavior profile.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// The shared public setup.
    pub fn setup(&self) -> &Arc<PublicSetup> {
        &self.keys.setup
    }

    /// The round the tree-building subprotocol is currently in.
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// The last committed round (Fig. 2's `kmax`).
    pub fn committed_round(&self) -> Round {
        self.kmax
    }

    /// The epoch index the current round falls in (admin `/status`).
    pub fn current_epoch(&self) -> u64 {
        self.keys.setup.epoch_index_of(self.round) as u64
    }

    /// The highest finalized round in the pool — the finalized
    /// frontier the admin `/status` endpoint reports.
    pub fn finalized_frontier(&self) -> Round {
        self.pool.latest_finalized_round()
    }

    /// Read access to the artifact pool (tests, experiments).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Number of client commands queued but not yet committed.
    pub fn pending_commands(&self) -> usize {
        self.pending.len()
    }

    /// The current `Δbnd` of the delay policy (diagnostics).
    pub fn delta_bound(&self) -> icc_types::SimDuration {
        self.delays.delta_bound()
    }

    /// Initializes the party: broadcasts its share of the round-1 beacon
    /// (the line before the main loop in Fig. 1) and runs the protocol
    /// as far as it can go.
    pub fn start(&mut self, now: SimTime) -> Step {
        let mut step = Step::default();
        if self.started || !self.behavior.participates() {
            return step;
        }
        // A fresh *process* over a surviving data directory: the store
        // already holds certified state, so booting is a restore, not a
        // cold start (a cold start would stall waiting for round-1
        // beacon shares no peer will re-send).
        if !self.store.is_empty() {
            return self.restore(now);
        }
        self.started = true;
        if self.behavior.shares_beacon() && self.keys.beacon_signer_for(Round::new(1)).is_some() {
            let share =
                artifacts::beacon_share(&self.keys, Round::new(1), &self.keys.setup.genesis_beacon);
            self.emit(ConsensusMessage::BeaconShare(share), &mut step);
            self.beacon_share_sent_upto = Round::new(1);
        }
        self.progress(now, &mut step);
        step
    }

    /// Handles a consensus message from any party (including echoes of
    /// this party's own artifacts).
    pub fn on_message(&mut self, now: SimTime, msg: &ConsensusMessage) -> Step {
        let mut step = Step::default();
        if !self.behavior.participates() || !self.started {
            return step;
        }
        // Run the clauses even for duplicate artifacts: the message may
        // have raced a timer whose wakeup already fired.
        self.pool.insert(msg);
        self.progress(now, &mut step);
        step
    }

    /// Handles a timer wake-up.
    pub fn on_wakeup(&mut self, now: SimTime) -> Step {
        let mut step = Step::default();
        if !self.behavior.participates() || !self.started {
            return step;
        }
        self.progress(now, &mut step);
        step
    }

    /// Accepts a client command into the input queue (§1: inputs arrive
    /// incrementally over time).
    pub fn on_command(&mut self, cmd: Command) {
        let h = command_hash(&cmd);
        if !self.committed_cmds.contains(&h) && self.pending_digests.insert(h) {
            self.pending.push_back((cmd, h));
        }
    }

    // ------------------------------------------------------------------
    // Crash recovery
    // ------------------------------------------------------------------

    /// Simulates a process crash: every volatile field is dropped (the
    /// pool, round state, input queue, dedup sets). Only the
    /// [`DurableStore`] — the replica's "disk" — and the recovery
    /// counters survive. [`restore`](Self::restore) brings the replica
    /// back.
    pub fn crash(&mut self) {
        self.pool = Pool::new(Arc::clone(&self.keys.setup));
        self.round = Round::new(1);
        self.rstate = None;
        self.beacon_share_sent_upto = Round::GENESIS;
        self.beacon_value_sent_upto = Round::GENESIS;
        self.kmax = Round::GENESIS;
        self.notarizations_broadcast.clear();
        self.finalizations_broadcast.clear();
        self.transition_certs.clear();
        self.pending.clear();
        self.pending_digests.clear();
        self.committed_cmds.clear();
        self.started = false;
        // `telemetry` deliberately survives: it is observability, not
        // replica state — the flight recorder should show the outage.
        self.entered_at.clear();
    }

    /// Restarts the replica from its durable state: installs the
    /// checkpoint as a certified root, replays the WAL through the
    /// pool's *trusted* path (zero signature verifications — everything
    /// in the store was verified before it was appended), and resumes
    /// at the round after the highest restored notarization. A replica
    /// that fell far behind while down still needs the catch-up
    /// protocol (gossip layer) to rejoin; plain ICC0 restore alone
    /// leaves it waiting for beacon shares of a long-past round.
    pub fn restore(&mut self, now: SimTime) -> Step {
        let mut step = Step::default();
        if !self.behavior.participates() {
            return step;
        }
        self.crash(); // fresh volatile state even on a cold call
        self.started = true;
        self.recovery.restarts += 1;
        if let Some(cp) = self.store.checkpoint().cloned() {
            self.pool.install_checkpoint(&cp);
            self.committed_cmds.extend(cp.committed.iter().copied());
            for t in &cp.transitions {
                self.transition_certs.insert(t.epoch, t.clone());
            }
            self.kmax = cp.round();
        }
        let entries: Vec<WalEntry> = self.store.wal().to_vec();
        for entry in entries {
            match entry {
                WalEntry::Beacon(r, v) => self.pool.install_beacon_trusted(r, v),
                WalEntry::Notarized {
                    proposal,
                    notarization,
                } => {
                    self.pool
                        .insert_owned(&ConsensusMessage::Proposal(proposal));
                    if let Some(n) = notarization {
                        self.pool.insert_owned(&ConsensusMessage::Notarization(n));
                    }
                }
                WalEntry::Finalization(f) => {
                    self.pool.insert_owned(&ConsensusMessage::Finalization(f));
                }
                WalEntry::Committed { digests, .. } => {
                    self.committed_cmds.extend(digests);
                }
                WalEntry::EpochTransition(t) => {
                    self.transition_certs.insert(t.epoch, t);
                }
            }
        }
        self.kmax = self.kmax.max(self.pool.latest_finalized_round());
        let resume = self
            .kmax
            .next()
            .max(self.pool.highest_notarized_round().next());
        self.round = resume;
        // Do not re-broadcast beacon shares for rounds the restored
        // chain already covers; receivers would dedup them anyway.
        self.beacon_share_sent_upto = self.pool.latest_beacon_round();
        self.beacon_value_sent_upto = self.pool.latest_beacon_round();
        // The pool was rebuilt from scratch above, so its verification
        // counter at this point *is* the number of signature checks the
        // replay cost — the zero the durability tests pin down.
        self.recovery.restore_verifications += self.pool.stats().verify_calls;
        self.last_recovered_round = self.store.frontier().get();
        self.progress(now, &mut step);
        step
    }

    /// The store frontier the last [`restore`](Self::restore) brought
    /// back (0 if never restored).
    pub fn last_recovered_round(&self) -> u64 {
        self.last_recovered_round
    }

    /// The round up to which this replica can actually *operate*: the
    /// lower of its committed tip (`kmax`) and its beacon-chain
    /// frontier. The two can diverge after a restart — flooded
    /// finalizations keep `kmax` current while the beacon of the round
    /// the replica resumed in is gone for good (peers broadcast each
    /// beacon share exactly once). A catch-up request must report this
    /// horizon, not `kmax`, so the serving peer's beacon segment chains
    /// from a value the requester actually holds.
    pub fn catch_up_horizon(&self) -> Round {
        Round::new(self.kmax.get().min(self.pool.latest_beacon_round().get()))
    }

    /// Verifies and applies a certified catch-up package fetched from a
    /// peer (gossip layer). On success the replica fast-forwards: the
    /// package block becomes the new committed tip (`kmax`), its beacon
    /// segment lets the replica enter the next round, and the package
    /// is journaled so a re-crash recovers past it. Intermediate blocks
    /// between the old and new `kmax` are *not* emitted as `Committed`
    /// events — the finalization certificate pins them, and state sync
    /// jumps over them (see `DESIGN.md` §5b); per-round safety across
    /// the cluster is unaffected.
    ///
    /// A package whose block this replica has already committed can
    /// still be useful: its beacon segment un-sticks a replica whose
    /// round is parked behind a beacon it can no longer obtain (see
    /// [`catch_up_horizon`](Self::catch_up_horizon)). Only a package
    /// that advances *neither* frontier is `Stale`.
    ///
    /// # Errors
    ///
    /// Returns the [`CatchUpError`] if the package is stale, forged or
    /// truncated; nothing is installed in that case.
    pub fn apply_catch_up(
        &mut self,
        pkg: &CatchUpPackage,
        now: SimTime,
    ) -> Result<Step, CatchUpError> {
        let pkg_round = pkg.round();
        let advances_chain = pkg_round > self.kmax;
        let advances_beacons = self.pool.beacon(self.round).is_none()
            && pkg.beacons.last().map(|(r, _)| *r) > Some(self.pool.latest_beacon_round());
        if !advances_chain && !advances_beacons {
            return Err(CatchUpError::Stale);
        }
        // Epoch window this replica is about to cross, anchored *before*
        // the install moves the finalized frontier.
        let local_epoch = self
            .keys
            .setup
            .epoch_index_of(self.pool.latest_finalized_round());
        let target_epoch = self.keys.setup.epoch_index_of(pkg_round);
        let crossed = self.pool.verify_and_install_catch_up(pkg)?;
        let mut step = Step::default();
        // Journal the package: a re-crash restores past this point.
        for &(r, v) in &pkg.beacons {
            self.store.append_beacon(r, v);
        }
        self.store
            .append_block(pkg.proposal.clone(), Some(pkg.notarization.clone()));
        self.store.append_finalization(pkg.finalization.clone());
        if crossed > 0 {
            // Archive the verified chain links (only those covering the
            // boundaries actually crossed — anything outside
            // `(local_epoch, target_epoch]` was not verified above).
            self.recovery.cross_epoch_catch_ups += 1;
            for t in &pkg.transitions {
                let e = t.epoch as usize;
                if e > local_epoch
                    && e <= target_epoch
                    && !self.transition_certs.contains_key(&t.epoch)
                {
                    self.store.append_epoch_transition(t.clone());
                    self.transition_certs.insert(t.epoch, t.clone());
                    self.recovery.epoch_transitions += 1;
                    let tr = t.round();
                    let te = t.epoch;
                    self.record_span(now, tr, SpanKind::EpochTransition { epoch: te });
                }
            }
        }
        step.events.push(NodeEvent::CaughtUp {
            from_round: self.kmax,
            to_round: pkg_round,
        });
        let from_round = self.kmax.get();
        self.record_span(now, pkg_round, SpanKind::CatchUpApplied { from_round });
        self.telemetry.metrics.catch_ups_applied.inc();
        if advances_chain {
            let digests: Vec<Hash256> = pkg
                .proposal
                .block
                .block()
                .payload()
                .commands()
                .iter()
                .map(command_hash)
                .collect();
            for d in &digests {
                self.committed_cmds.insert(*d);
            }
            let n_digests = digests.len() as u64;
            self.store.append_committed(pkg_round, digests);
            self.recovery.rounds_behind_total += pkg_round.get() - self.kmax.get();
            step.events.push(NodeEvent::Committed {
                block: pkg.proposal.block.clone(),
            });
            self.record_span(now, pkg_round, SpanKind::Finalized);
            self.telemetry.metrics.blocks_committed.inc();
            self.telemetry.metrics.commands_committed.add(n_digests);
            self.kmax = pkg_round;
            self.entered_at.retain(|r, _| *r > pkg_round.get());
        }
        self.recovery.catch_up_applied += 1;
        self.finalizations_broadcast
            .insert(pkg.proposal.block.hash());
        if self.round <= pkg_round {
            self.round = pkg_round.next();
            self.rstate = None;
        }
        self.maybe_checkpoint();
        self.progress(now, &mut step);
        Ok(step)
    }

    /// Builds a catch-up package for a peer that reports knowing the
    /// beacon chain up to `have_round`. Returns `None` when this
    /// replica cannot help: it has nothing finalized past `have_round`,
    /// its beacon chain no longer reaches back to `have_round + 1`
    /// (purged), or the package would cross an epoch boundary whose
    /// transition certificate this replica has not archived — the
    /// requester then rotates to another peer.
    pub fn build_catch_up_package(&self, have_round: Round) -> Option<CatchUpPackage> {
        let block = self.pool.latest_finalized_block()?.clone();
        let round = block.round();
        if round <= have_round {
            return None;
        }
        let hash = block.hash();
        let authenticator = self.pool.authenticator_of(&hash)?;
        let notarization = self.pool.notarization_of(&hash)?.clone();
        let finalization = self.pool.finalization_of(&hash)?.clone();
        let beacons = self.pool.beacons_from(have_round.next());
        // The segment must chain from the requester's tip and cover
        // entering `round + 1`.
        let mut expected = have_round.next();
        for (r, _) in &beacons {
            if *r != expected {
                return None;
            }
            expected = expected.next();
        }
        if beacons.last().map(|(r, _)| *r) < Some(round.next()) {
            return None;
        }
        // Cross-epoch certificate chain: one archived link per boundary
        // between the requester's epoch and the packaged block's.
        let from_epoch = self.keys.setup.epoch_index_of(have_round);
        let to_epoch = self.keys.setup.epoch_index_of(round);
        let mut transitions = Vec::with_capacity(to_epoch - from_epoch);
        for e in (from_epoch + 1)..=to_epoch {
            transitions.push(self.transition_certs.get(&(e as u64))?.clone());
        }
        Some(CatchUpPackage {
            proposal: BlockProposal {
                block,
                authenticator,
                parent_notarization: None,
            },
            notarization,
            finalization,
            beacons,
            transitions,
        })
    }

    /// Recovery counters: core-owned (restarts, catch-ups) composed
    /// with store-owned (WAL appends, checkpoints).
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut s = self.recovery;
        s.wal_appends = self.store.wal_appends();
        s.checkpoints = self.store.checkpoints_taken();
        s
    }

    /// Mutable access for the dissemination layer's counters
    /// (rejected packages, catch-up bytes and latency).
    pub fn recovery_stats_mut(&mut self) -> &mut RecoveryStats {
        &mut self.recovery
    }

    /// This replica's telemetry: protocol metrics plus the flight
    /// recorder of phase events.
    pub fn telemetry(&self) -> &NodeTelemetry {
        &self.telemetry
    }

    /// Mutable telemetry access for the dissemination layer (gossip
    /// retries, catch-up requests) — same pattern as
    /// [`recovery_stats_mut`](Self::recovery_stats_mut).
    pub fn telemetry_mut(&mut self) -> &mut NodeTelemetry {
        &mut self.telemetry
    }

    /// Records one flight-recorder event stamped with sim time. Goes
    /// through the [`NodeTelemetry::record`] funnel, so every span also
    /// feeds the live anomaly detector.
    fn record_span(&mut self, now: SimTime, round: Round, kind: SpanKind) {
        self.telemetry.record(SpanEvent {
            at_us: now.as_micros(),
            node: self.keys.index.get(),
            round: round.get(),
            kind,
        });
    }

    /// The replica's durable store (tests, diagnostics).
    pub fn store(&self) -> &DurableStore {
        &self.store
    }

    /// Forces the store's backend durable (graceful shutdown). No-op
    /// for the in-memory backend.
    ///
    /// # Errors
    ///
    /// The backend's I/O error, if flushing failed.
    pub fn flush_store(&mut self) -> std::io::Result<()> {
        self.store.flush()
    }

    /// The store backend's telemetry (all zeros for the in-memory
    /// backend).
    pub fn storage_counters(&self) -> crate::storage::StorageCounters {
        self.store.storage_counters()
    }

    /// Broadcasts `msg` and inserts it into the local pool immediately
    /// (a party's own messages reach its own pool, §3.1). Own artifacts
    /// take the trusted path: they were signed locally a moment ago, so
    /// the ChangeSet step moves them to the validated section without
    /// re-verifying.
    fn emit(&mut self, msg: ConsensusMessage, step: &mut Step) {
        self.pool.insert_owned(&msg);
        step.broadcasts.push(msg);
    }

    /// Runs every enabled protocol clause to quiescence.
    fn progress(&mut self, now: SimTime, step: &mut Step) {
        self.run_finalization(now, step);
        let mut iterations = 0u32;
        loop {
            iterations += 1;
            if iterations >= 50_000 {
                // Degenerate configurations (e.g. a single-party subnet
                // with ε = 0) can make unbounded progress in zero time;
                // yield to the runtime and continue on the next wakeup
                // instead of spinning here.
                step.next_wakeup = Some(now);
                return;
            }
            // Phase: compute the round beacon and enter the round.
            if self.rstate.is_none() {
                if !self.enter_round(now, step) {
                    break; // waiting for beacon shares
                }
                continue;
            }
            // Advance past a finished round.
            if self.rstate.as_ref().is_some_and(|rs| rs.done) {
                self.round = self.round.next();
                self.rstate = None;
                continue;
            }
            // Clause (a): finish the round on a notarized block.
            if self.try_finish_round(now, step) {
                self.run_finalization(now, step);
                continue;
            }
            // Clause (b): propose after Δprop(rank_me).
            if self.try_propose(now, step) {
                continue;
            }
            // Clause (c): support (echo + share / disqualify).
            if self.try_support(now, step) {
                continue;
            }
            break;
        }
        self.run_finalization(now, step);
        step.next_wakeup = self.next_wakeup(now);
    }

    /// Fig. 1 preamble: wait for `t + 1` beacon shares, compute the
    /// beacon, derive ranks, and pipeline the next round's share.
    fn enter_round(&mut self, now: SimTime, step: &mut Step) -> bool {
        // Ablated pipelining: contribute our share for the *current*
        // round's beacon only now (adding a share-exchange δ per round).
        if self.disable_beacon_pipelining
            && self.beacon_share_sent_upto < self.round
            && self.behavior.shares_beacon()
            && self.keys.beacon_signer_for(self.round).is_some()
        {
            if let Some(prev) = self.round.prev().and_then(|p| self.pool.beacon(p)).copied() {
                self.beacon_share_sent_upto = self.round;
                let share = artifacts::beacon_share(&self.keys, self.round, &prev);
                self.emit(ConsensusMessage::BeaconShare(share), step);
            }
        }
        if self.pool.beacon(self.round).is_none() {
            self.pool.try_compute_beacon(self.round);
        }
        let Some(beacon) = self.pool.beacon(self.round).copied() else {
            return false;
        };
        // WAL: the beacon chain must survive a crash — restored rounds
        // re-derive their permutations from it, and catch-up segments
        // chain from its tip.
        self.store.append_beacon(self.round, beacon);
        // Aggregator-routed mode: flood the combined value (unique, so
        // self-certifying) once per round. Nodes that never saw `t + 1`
        // shares verify one group signature and move on.
        if self.broadcast_beacon_values
            && self.beacon_value_sent_upto < self.round
            && self.behavior.shares_beacon()
        {
            self.beacon_value_sent_upto = self.round;
            step.broadcasts.push(ConsensusMessage::Beacon(Beacon {
                round: self.round,
                value: beacon,
            }));
        }
        // Ranks are drawn over the *round's epoch members* only: a
        // departed (or not-yet-joined) party observes the round without
        // a rank, so it can never lead, propose, or sign.
        let (perm, my_rank, epoch_index, at_boundary) = {
            let epoch = self.keys.setup.epoch_of(self.round);
            let perm = RankPermutation::derive_members(&beacon, &epoch.members);
            let my_rank = perm.try_rank_of(self.keys.index.get()).map(Rank::new);
            let at_boundary = epoch.index > 0 && epoch.start_round == self.round;
            (perm, my_rank, epoch.index, at_boundary)
        };
        let leader = perm.leader();
        step.events.push(NodeEvent::EnteredRound {
            round: self.round,
            my_rank,
            leader: icc_types::NodeIndex::new(leader),
        });
        let round = self.round;
        self.record_span(now, round, SpanKind::BeaconShareQuorum);
        self.record_span(
            now,
            round,
            SpanKind::RoundStart {
                rank: my_rank.map_or(u32::MAX, Rank::get),
                leader,
            },
        );
        if at_boundary {
            // The membership/reshare schedule activates here: from this
            // round on, the new epoch's signer set governs.
            self.record_span(now, round, SpanKind::EpochTransition { epoch: epoch_index });
            step.events.push(NodeEvent::EpochEntered {
                round,
                epoch: epoch_index,
            });
        }
        self.telemetry.metrics.rounds_entered.inc();
        self.entered_at.insert(round.get(), now);
        self.rstate = Some(RoundState::new(now, perm, my_rank));

        // Pipelining: broadcast our share of the *next* round's beacon.
        let next = self.round.next();
        if !self.disable_beacon_pipelining
            && self.beacon_share_sent_upto < next
            && self.behavior.shares_beacon()
            && self.keys.beacon_signer_for(next).is_some()
        {
            self.beacon_share_sent_upto = next;
            let share = artifacts::beacon_share(&self.keys, next, &beacon);
            self.emit(ConsensusMessage::BeaconShare(share), step);
        }
        true
    }

    /// Clause (a): a notarized round-k block (or a completable share
    /// set) ends the round.
    fn try_finish_round(&mut self, now: SimTime, step: &mut Step) -> bool {
        let notarization = if let Some((_, n)) = self.pool.notarized_block(self.round) {
            n.clone()
        } else if let Some(n) = self.pool.completable_notarization(self.round) {
            // Combined from shares this party already validated: trusted.
            self.pool
                .insert_owned(&ConsensusMessage::Notarization(n.clone()));
            n
        } else {
            return false;
        };
        let block_ref = notarization.block_ref;
        // WAL: the round's notarized block (body + certificate) is what
        // replay rebuilds the validated chain from.
        if let (Some(b), Some(auth)) = (
            self.pool.block(&block_ref.hash).cloned(),
            self.pool.authenticator_of(&block_ref.hash),
        ) {
            self.store.append_block(
                BlockProposal {
                    block: b,
                    authenticator: auth,
                    parent_notarization: None,
                },
                Some(notarization.clone()),
            );
        }
        if self.notarizations_broadcast.insert(block_ref.hash) {
            self.emit(ConsensusMessage::Notarization(notarization), step);
        }
        let rs = self.rstate.as_mut().expect("in a round");
        rs.done = true;
        let duration = now.saturating_since(rs.t0);
        let notarized_rank = Rank::new(rs.perm.rank_of(block_ref.proposer.get()));
        let round = self.round;
        self.record_span(
            now,
            round,
            SpanKind::Notarized {
                rank: notarized_rank.get(),
            },
        );
        self.telemetry
            .metrics
            .round_duration_us
            .observe(duration.as_micros());
        let rs = self.rstate.as_mut().expect("in a round");
        // "if N ⊆ {B} then broadcast a finalization share for B".
        let n_subset = rs.n_set.values().all(|h| *h == block_ref.hash);
        let i_am_member = rs.my_rank.is_some();
        step.events.push(NodeEvent::RoundFinished {
            round: self.round,
            duration,
            notarized_rank,
        });
        self.delays
            .observe_round(duration, notarized_rank.is_leader());
        if n_subset && i_am_member && self.behavior.shares_finalization() {
            let fs = artifacts::finalization_share(&self.keys, block_ref);
            self.emit(ConsensusMessage::FinalizationShare(fs), step);
        }
        true
    }

    /// Clause (b): propose a block once `Δprop(rank_me)` has elapsed.
    fn try_propose(&mut self, now: SimTime, step: &mut Step) -> bool {
        let (t0, my_rank, proposed) = {
            let rs = self.rstate.as_ref().expect("in a round");
            (rs.t0, rs.my_rank, rs.proposed)
        };
        // A non-member of the round's epoch has no rank: it never
        // proposes.
        let Some(my_rank) = my_rank else {
            return false;
        };
        if proposed || now < t0 + self.delays.prop(my_rank) {
            return false;
        }
        self.rstate.as_mut().expect("in a round").proposed = true;

        // Choose a notarized round-(k−1) block to extend.
        let (parent, parent_notarization) = if self.round == Round::new(1) {
            (self.keys.setup.genesis.clone(), None)
        } else {
            let Some((b, n)) = self
                .pool
                .notarized_block(self.round.prev().expect("round >= 2"))
            else {
                // Unreachable for honest flow: the previous round only
                // ends with a notarized block in the pool.
                return false;
            };
            (b.clone(), Some(n.clone()))
        };

        let round = self.round;
        self.record_span(now, round, SpanKind::Proposed);
        self.telemetry.metrics.blocks_proposed.inc();
        if self.behavior.equivocates() {
            self.propose_equivocating(parent, parent_notarization, step);
            return true;
        }
        let payload = if self.behavior.proposes_empty() {
            Payload::empty()
        } else {
            self.build_payload(&parent)
        };
        let block = Block::new(self.round, self.keys.index, parent.hash(), payload).into_hashed();
        step.events.push(NodeEvent::Proposed {
            round: self.round,
            hash: block.hash(),
        });
        let proposal = artifacts::proposal(&self.keys, block, parent_notarization.clone());
        self.emit(ConsensusMessage::Proposal(proposal), step);

        true
    }

    /// The equivocating variant of clause (b): build two conflicting
    /// blocks and send each to half of the parties, maximizing the
    /// split (the attack the disqualification set `D` defends against).
    fn propose_equivocating(
        &mut self,
        parent: HashedBlock,
        parent_notarization: Option<icc_types::messages::Notarization>,
        step: &mut Step,
    ) {
        let mk_block = |tag: u8, round: Round, me: icc_types::NodeIndex, parent: &HashedBlock| {
            let marker = Command::new(
                hash_parts("equivocation", &[&round.get().to_le_bytes(), &[tag]])
                    .as_bytes()
                    .to_vec(),
            );
            Block::new(
                round,
                me,
                parent.hash(),
                Payload::from_commands(vec![marker]),
            )
            .into_hashed()
        };
        let b1 = mk_block(1, self.round, self.keys.index, &parent);
        let b2 = mk_block(2, self.round, self.keys.index, &parent);
        step.events.push(NodeEvent::Proposed {
            round: self.round,
            hash: b1.hash(),
        });
        let p1 = ConsensusMessage::Proposal(artifacts::proposal(
            &self.keys,
            b1,
            parent_notarization.clone(),
        ));
        let p2 =
            ConsensusMessage::Proposal(artifacts::proposal(&self.keys, b2, parent_notarization));
        self.pool.insert_owned(&p1);
        self.pool.insert_owned(&p2);
        let n = self.keys.setup.config.n();
        for i in 0..n as u32 {
            let to = icc_types::NodeIndex::new(i);
            let msg = if i % 2 == 0 { p1.clone() } else { p2.clone() };
            if to != self.keys.index {
                step.sends.push((to, msg));
            }
        }
    }

    /// Clause (c): support the best eligible block — echo it, then
    /// either broadcast a notarization share or disqualify its rank.
    fn try_support(&mut self, now: SimTime, step: &mut Step) -> bool {
        let (candidate, first_seen_rank) = {
            let rs = self.rstate.as_ref().expect("in a round");
            // Valid blocks of this round, ranked, rank not disqualified.
            let mut ranked: Vec<(u32, HashedBlock)> = self
                .pool
                .valid_blocks(self.round)
                .into_iter()
                .map(|b| (rs.perm.rank_of(b.proposer().get()), b.clone()))
                .filter(|(r, _)| !rs.d_set.contains(r))
                .collect();
            // Guard (iv): only blocks of the *minimum* eligible rank may
            // be supported; any lower-ranked valid block blocks higher
            // ranks regardless of timers.
            let Some(&(min_rank, _)) = ranked.iter().min_by_key(|(r, _)| *r) else {
                return false;
            };
            // Flight recorder: note the first moment a valid proposal
            // for this round is visible — even if its `Δntry` timer has
            // not yet expired (the critical-path analyzer separates
            // "waiting for a proposal" from "waiting for the timer").
            let first_seen = if rs.proposal_seen {
                None
            } else {
                Some(min_rank)
            };
            ranked.retain(|(r, b)| {
                *r == min_rank
                    && rs.n_set.get(r) != Some(&b.hash())
                    && now >= rs.t0 + self.delays.ntry(Rank::new(*r))
            });
            // Deterministic pick among same-rank candidates.
            ranked.sort_by_key(|(_, b)| b.hash());
            (ranked.into_iter().next(), first_seen)
        };
        if let Some(rank) = first_seen_rank {
            self.rstate.as_mut().expect("in a round").proposal_seen = true;
            let round = self.round;
            self.record_span(now, round, SpanKind::ProposalSeen { rank });
        }
        let Some((rank, block)) = candidate else {
            return false;
        };
        let block_ref = BlockRef::of_hashed(&block);

        // Echo (re-broadcast) other parties' blocks so every honest
        // party gets a chance to see them and disqualify equivocators.
        let rs = self.rstate.as_mut().expect("in a round");
        let should_echo = Some(rank) != rs.my_rank.map(Rank::get) && rs.echoed.insert(block.hash());
        let already_shared_this_rank = rs.n_set.contains_key(&rank);
        let i_am_member = rs.my_rank.is_some();
        if already_shared_this_rank {
            rs.d_set.insert(rank);
        } else {
            rs.n_set.insert(rank, block.hash());
        }
        if should_echo {
            let authenticator = self
                .pool
                .authenticator_of(&block.hash())
                .expect("valid blocks have authenticators");
            let parent_notarization = if block.round() == Round::new(1) {
                None
            } else {
                Some(
                    self.pool
                        .notarization_of(&block.parent())
                        .expect("valid blocks have notarized parents")
                        .clone(),
                )
            };
            step.broadcasts
                .push(ConsensusMessage::Proposal(BlockProposal {
                    block: block.clone(),
                    authenticator,
                    parent_notarization,
                }));
        }
        if !already_shared_this_rank && i_am_member && self.behavior.shares_notarization() {
            let share = artifacts::notarization_share(&self.keys, block_ref);
            self.emit(ConsensusMessage::NotarizationShare(share), step);
        }
        true
    }

    /// Fig. 2: combine/broadcast finalizations and output committed
    /// payloads, advancing `kmax`.
    fn run_finalization(&mut self, now: SimTime, step: &mut Step) {
        loop {
            // Case (ii): a completable share set.
            if let Some(f) = self.pool.completable_finalization(self.kmax) {
                // Combined from shares this party already validated.
                self.pool
                    .insert_owned(&ConsensusMessage::Finalization(f.clone()));
                if self.finalizations_broadcast.insert(f.block_ref.hash) {
                    step.broadcasts.push(ConsensusMessage::Finalization(f));
                }
                continue;
            }
            // Case (i): a finalized block with round > kmax.
            let Some(block) = self.pool.finalized_above(self.kmax).cloned() else {
                break;
            };
            let finalization = self
                .pool
                .finalization_of(&block.hash())
                .expect("finalized blocks have finalizations")
                .clone();
            // WAL: the finalization certificate plus the finalized chain
            // bodies (the finalized branch is what replay must rebuild;
            // the branch logged in `try_finish_round` may differ).
            self.store.append_finalization(finalization.clone());
            if self.finalizations_broadcast.insert(block.hash()) {
                step.broadcasts
                    .push(ConsensusMessage::Finalization(finalization));
            }
            let chain = self
                .pool
                .chain_back_to(&block, self.kmax)
                .expect("finalized blocks have complete chains");
            for b in chain {
                if let Some(auth) = self.pool.authenticator_of(&b.hash()) {
                    self.store.append_block(
                        BlockProposal {
                            block: b.clone(),
                            authenticator: auth,
                            parent_notarization: None,
                        },
                        self.pool.notarization_of(&b.hash()).cloned(),
                    );
                }
                let digests: Vec<Hash256> = b
                    .block()
                    .payload()
                    .commands()
                    .iter()
                    .map(command_hash)
                    .collect();
                for d in &digests {
                    self.committed_cmds.insert(*d);
                }
                let committed_round = b.round();
                self.record_span(now, committed_round, SpanKind::Finalized);
                self.telemetry.metrics.blocks_committed.inc();
                self.telemetry
                    .metrics
                    .commands_committed
                    .add(digests.len() as u64);
                if let Some(t0) = self.entered_at.remove(&committed_round.get()) {
                    self.telemetry
                        .metrics
                        .finalization_latency_us
                        .observe(now.saturating_since(t0).as_micros());
                }
                self.store.append_committed(committed_round, digests);
                step.events.push(NodeEvent::Committed { block: b });
            }
            // Trim committed commands from the head of the input queue.
            while let Some((_, h)) = self.pending.front() {
                if self.committed_cmds.contains(h) {
                    self.pending_digests.remove(h);
                    self.pending.pop_front();
                } else {
                    break;
                }
            }
            self.kmax = block.round();
            // Rounds at or below the committed tip will never produce a
            // fresh latency sample (their entries were consumed above,
            // or the round was skipped over by a certificate).
            self.entered_at.retain(|r, _| *r > self.kmax.get());
            self.maybe_archive_transitions();
            self.maybe_checkpoint();
            if let Some(depth) = self.policy.purge_depth {
                if self.kmax.get() > depth {
                    self.pool.purge_below(Round::new(self.kmax.get() - depth));
                }
            }
        }
    }

    /// Archives the handoff certificate of every epoch boundary the
    /// finalized chain has crossed: the highest finalized block of the
    /// *outgoing* epoch, with its notarization + finalization. Retried
    /// on every commit until the certificate pair is pooled, so a
    /// boundary crossed while a certificate raced ahead is picked up
    /// later. These archives are what
    /// [`build_catch_up_package`](Self::build_catch_up_package) chains
    /// into cross-epoch packages.
    fn maybe_archive_transitions(&mut self) {
        let setup = Arc::clone(&self.keys.setup);
        for e in 1..setup.epoch_count() as u64 {
            let info = setup.epoch(e).expect("epoch index in range");
            if info.start_round > self.kmax {
                break;
            }
            if self.transition_certs.contains_key(&e) {
                continue;
            }
            let out_start = setup
                .epoch(e - 1)
                .expect("epoch index in range")
                .start_round;
            let Some(block) = self.pool.finalized_below(info.start_round) else {
                continue;
            };
            // The handoff block must belong to the outgoing epoch.
            if block.round() < out_start {
                continue;
            }
            let hash = block.hash();
            let (Some(notarization), Some(finalization)) = (
                self.pool.notarization_of(&hash).cloned(),
                self.pool.finalization_of(&hash).cloned(),
            ) else {
                continue;
            };
            let t = EpochTransition {
                epoch: e,
                notarization,
                finalization,
            };
            self.store.append_epoch_transition(t.clone());
            self.transition_certs.insert(e, t);
            self.recovery.epoch_transitions += 1;
        }
    }

    /// Takes a checkpoint (and compacts the WAL) once enough rounds
    /// have committed since the last one. Skipped — and retried at the
    /// next commit — if any certificate for the latest finalized block
    /// is not yet pooled (e.g. a finalization that raced ahead of the
    /// notarization).
    fn maybe_checkpoint(&mut self) {
        let base = self
            .store
            .checkpoint()
            .map_or(Round::GENESIS, Checkpoint::round);
        if self.kmax.get().saturating_sub(base.get()) < self.checkpoint_interval {
            return;
        }
        let Some(block) = self.pool.latest_finalized_block().cloned() else {
            return;
        };
        let hash = block.hash();
        let round = block.round();
        let (Some(auth), Some(notarization), Some(finalization), Some(beacon)) = (
            self.pool.authenticator_of(&hash),
            self.pool.notarization_of(&hash).cloned(),
            self.pool.finalization_of(&hash).cloned(),
            self.pool.beacon(round).copied(),
        ) else {
            return;
        };
        // Deterministic order for the committed-digest set.
        let mut committed: Vec<Hash256> = self.committed_cmds.iter().copied().collect();
        committed.sort();
        self.store.install_checkpoint(Checkpoint {
            proposal: BlockProposal {
                block,
                authenticator: auth,
                parent_notarization: None,
            },
            notarization,
            finalization,
            beacon,
            committed,
            transitions: self.transition_certs.values().cloned().collect(),
        });
    }

    /// `getPayload(Bp)` (§3.5): pending commands not already in the
    /// chain ending at `parent`, within the block policy limits.
    fn build_payload(&self, parent: &HashedBlock) -> Payload {
        let mut excluded: HashSet<Hash256> = HashSet::new();
        if let Some(chain) = self.pool.chain_back_to(parent, self.kmax) {
            for b in &chain {
                for cmd in b.block().payload().commands() {
                    excluded.insert(command_hash(cmd));
                }
            }
        }
        let mut commands = Vec::new();
        let mut bytes = 0usize;
        for (cmd, h) in &self.pending {
            if commands.len() >= self.policy.max_commands
                || bytes + cmd.len() > self.policy.max_bytes
            {
                break;
            }
            if self.committed_cmds.contains(h) || excluded.contains(h) {
                continue;
            }
            bytes += cmd.len();
            commands.push(cmd.clone());
        }
        Payload::from_commands(commands)
    }

    /// The earliest future instant any time-gated clause could fire.
    fn next_wakeup(&self, now: SimTime) -> Option<SimTime> {
        let rs = self.rstate.as_ref()?;
        if rs.done {
            return None;
        }
        let mut wake: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > now {
                wake = Some(wake.map_or(t, |w: SimTime| w.min(t)));
            }
        };
        if let (false, Some(my_rank)) = (rs.proposed, rs.my_rank) {
            consider(rs.t0 + self.delays.prop(my_rank));
        }
        for b in self.pool.valid_blocks(self.round) {
            let r = rs.perm.rank_of(b.proposer().get());
            if rs.d_set.contains(&r) || rs.n_set.get(&r) == Some(&b.hash()) {
                continue;
            }
            consider(rs.t0 + self.delays.ntry(Rank::new(r)));
        }
        wake
    }
}
