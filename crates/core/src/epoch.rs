//! Epochs: the membership schedule and the per-epoch key registry
//! (ROADMAP item 5, dynamic membership).
//!
//! The paper fixes one `(t, t+1, n)` committee for the lifetime of the
//! subnet; real deployments rotate node providers. An **epoch** is a
//! maximal run of rounds with a fixed member set. The schedule of
//! epochs — which universe indices are members from which round on — is
//! agreed out of band and activated only at the predetermined boundary
//! rounds, so every party switches signer sets at the same round.
//!
//! Key material across epochs:
//!
//! * `S_auth`, `S_notary`, `S_final` keys span the whole node
//!   *universe*; an epoch restricts who may sign (membership gating in
//!   the pool classifier) and how many shares a quorum takes
//!   (per-epoch `m − t` / `t + 1` thresholds, checked with
//!   [`MultiSigScheme::verify_subset`](icc_crypto::multisig::MultiSigScheme::verify_subset)).
//! * `S_beacon` is *reshared* at every boundary
//!   ([`ReshareDealing`](icc_crypto::dkg::ReshareDealing) →
//!   [`reshare_aggregate`](icc_crypto::dkg::reshare_aggregate)): the
//!   group public key — and therefore the beacon value sequence — is
//!   preserved byte-for-byte, while the share vector moves to the new
//!   member positions. Old-epoch shares do not verify against the new
//!   epoch's share commitments.
//!
//! Within an epoch, threshold-instance indices are **positions** in the
//! sorted member list (0‥m), while multi-signature and authenticator
//! indices remain universe node indices.

use icc_crypto::threshold::ThresholdPublic;
use icc_types::{Round, SubnetConfig};
use std::sync::Arc;

/// One entry of a membership schedule: from `start_round` on (until the
/// next entry's start), the member set is `members`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSpec {
    /// First round governed by this epoch.
    pub start_round: Round,
    /// Sorted, deduplicated universe node indices.
    pub members: Vec<u32>,
}

impl EpochSpec {
    /// A spec entry with `members` normalised (sorted, deduplicated).
    pub fn new(start_round: Round, mut members: Vec<u32>) -> EpochSpec {
        members.sort_unstable();
        members.dedup();
        EpochSpec {
            start_round,
            members,
        }
    }
}

/// A full membership schedule over the node universe.
///
/// Epoch 0 starts at the genesis round; later epochs start at strictly
/// increasing boundary rounds. The *universe* is `0 ‥ 1 + max index
/// mentioned anywhere in the schedule`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSchedule {
    epochs: Vec<EpochSpec>,
}

impl EpochSchedule {
    /// Builds a schedule from spec entries.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty, the first epoch does not start
    /// at genesis, boundary rounds are not strictly increasing, or any
    /// member set is empty.
    pub fn new(epochs: Vec<EpochSpec>) -> EpochSchedule {
        assert!(!epochs.is_empty(), "schedule needs at least one epoch");
        assert!(
            epochs[0].start_round == Round::GENESIS,
            "epoch 0 must start at the genesis round"
        );
        for (e, spec) in epochs.iter().enumerate() {
            assert!(!spec.members.is_empty(), "epoch {e} has no members");
            assert!(
                spec.members.windows(2).all(|w| w[0] < w[1]),
                "epoch {e} members must be sorted and unique"
            );
            if e > 0 {
                assert!(
                    spec.start_round > epochs[e - 1].start_round,
                    "epoch boundaries must be strictly increasing"
                );
            }
        }
        EpochSchedule { epochs }
    }

    /// The trivial schedule: one epoch, all of `0‥n`, forever.
    pub fn static_membership(n: usize) -> EpochSchedule {
        EpochSchedule::new(vec![EpochSpec::new(
            Round::GENESIS,
            (0..n as u32).collect(),
        )])
    }

    /// Parses the command-line form
    /// `"0:0,1,2,3;30:0,1,2,4"` — semicolon-separated
    /// `start_round:comma-separated-members` entries. Every process of a
    /// cluster must be handed the identical string.
    pub fn parse(spec: &str) -> Result<EpochSchedule, String> {
        let mut epochs = Vec::new();
        for (i, entry) in spec.split(';').enumerate() {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (round, members) = entry
                .split_once(':')
                .ok_or_else(|| format!("epoch entry {i}: expected `round:members`"))?;
            let start: u64 = round
                .trim()
                .parse()
                .map_err(|e| format!("epoch entry {i}: bad round: {e}"))?;
            let members: Vec<u32> = members
                .split(',')
                .map(|m| m.trim().parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("epoch entry {i}: bad member index: {e}"))?;
            if members.is_empty() {
                return Err(format!("epoch entry {i}: no members"));
            }
            epochs.push(EpochSpec::new(Round::new(start), members));
        }
        if epochs.is_empty() {
            return Err("empty epoch schedule".into());
        }
        if epochs[0].start_round != Round::GENESIS {
            return Err("epoch 0 must start at round 0".into());
        }
        if !epochs
            .windows(2)
            .all(|w| w[0].start_round < w[1].start_round)
        {
            return Err("epoch boundaries must be strictly increasing".into());
        }
        Ok(EpochSchedule { epochs })
    }

    /// The inverse of [`parse`](Self::parse), for handing a schedule to
    /// child processes.
    pub fn to_spec_string(&self) -> String {
        self.epochs
            .iter()
            .map(|e| {
                let members: Vec<String> = e.members.iter().map(u32::to_string).collect();
                format!("{}:{}", e.start_round.get(), members.join(","))
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// The schedule entries, in epoch order.
    pub fn epochs(&self) -> &[EpochSpec] {
        &self.epochs
    }

    /// Number of epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Never true: schedules hold at least one epoch.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The universe size: one past the highest node index mentioned.
    pub fn universe(&self) -> usize {
        1 + self
            .epochs
            .iter()
            .flat_map(|e| e.members.iter().copied())
            .max()
            .expect("schedules are non-empty") as usize
    }
}

/// The resolved public material of one epoch: its member set, the
/// thresholds induced by the member count, and the reshared beacon
/// instance for this epoch's positions.
#[derive(Debug, Clone)]
pub struct EpochInfo {
    /// Epoch number (0-based).
    pub index: u64,
    /// First round governed by this epoch.
    pub start_round: Round,
    /// Sorted universe node indices of the members.
    pub members: Vec<u32>,
    /// Subnet parameters over `members.len()` parties — the per-epoch
    /// `n − t` / `t + 1` quorum sizes.
    pub config: SubnetConfig,
    /// The beacon threshold instance for this epoch: same group public
    /// key as every other epoch, share commitments at this epoch's
    /// positions.
    pub beacon: Arc<ThresholdPublic>,
}

impl EpochInfo {
    /// Member count `m`.
    pub fn m(&self) -> usize {
        self.members.len()
    }

    /// Whether `node` (universe index) is a member of this epoch.
    pub fn is_member(&self, node: u32) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The position of `node` in the sorted member list — the node's
    /// threshold-instance index for this epoch — or `None` for a
    /// non-member.
    pub fn position_of(&self, node: u32) -> Option<u32> {
        self.members.binary_search(&node).ok().map(|p| p as u32)
    }

    /// Per-epoch notarization quorum (`m − t`).
    pub fn notarization_threshold(&self) -> usize {
        self.config.notarization_threshold()
    }

    /// Per-epoch finalization quorum (`m − t`).
    pub fn finalization_threshold(&self) -> usize {
        self.config.finalization_threshold()
    }

    /// Per-epoch beacon quorum (`t + 1`).
    pub fn beacon_threshold(&self) -> usize {
        self.config.beacon_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_schedule_roundtrips_through_spec_string() {
        let s = EpochSchedule::static_membership(4);
        assert_eq!(s.to_spec_string(), "0:0,1,2,3");
        assert_eq!(EpochSchedule::parse(&s.to_spec_string()).unwrap(), s);
        assert_eq!(s.universe(), 4);
    }

    #[test]
    fn parse_replace_schedule() {
        let s = EpochSchedule::parse("0:0,1,2,3;30:0,1,2,4").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.universe(), 5);
        assert_eq!(s.epochs()[1].start_round, Round::new(30));
        assert_eq!(s.epochs()[1].members, vec![0, 1, 2, 4]);
        assert_eq!(s.to_spec_string(), "0:0,1,2,3;30:0,1,2,4");
    }

    #[test]
    fn parse_rejects_malformed_schedules() {
        assert!(EpochSchedule::parse("").is_err());
        assert!(EpochSchedule::parse("5:0,1,2").is_err()); // no genesis epoch
        assert!(EpochSchedule::parse("0:0,1;0:0,1").is_err()); // non-increasing
        assert!(EpochSchedule::parse("0:").is_err()); // no members
        assert!(EpochSchedule::parse("0;1,2").is_err()); // missing colon
    }

    #[test]
    fn spec_normalises_member_order() {
        let e = EpochSpec::new(Round::GENESIS, vec![3, 1, 1, 0]);
        assert_eq!(e.members, vec![0, 1, 3]);
    }
}
