//! Key material and trusted setup (paper §3.1–§3.2).
//!
//! Each party is initialized with a secret key for each of the four
//! schemes and the public material of all parties:
//!
//! * `S_auth` — an ordinary signature key pair per party;
//! * `S_notary`, `S_final` — `(t, n−t, n)` multi-signature instances;
//! * `S_beacon` — a `(t, t+1, n)` threshold instance with
//!   Shamir-shared key, dealt by a trusted dealer (explicitly permitted
//!   by §3.1).
//!
//! [`generate_keys`] plays the trusted dealer and returns one
//! [`NodeKeys`] per party plus the shared [`PublicSetup`].

use icc_crypto::beacon::BeaconValue;
use icc_crypto::multisig::MultiSigScheme;
use icc_crypto::sig::{PublicKey, SecretKey};
use icc_crypto::threshold::{Dealer, ThresholdPublic, ThresholdSigner};
use icc_crypto::{hash_parts, Hash256};
use icc_types::block::{Block, HashedBlock};
use icc_types::messages::domains;
use icc_types::{NodeIndex, SubnetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// Public material shared by all parties of one subnet.
pub struct PublicSetup {
    /// The subnet parameters.
    pub config: SubnetConfig,
    /// Every party's `S_auth` public key, by index.
    pub auth_keys: Vec<PublicKey>,
    /// The `(t, n−t, n)` notarization multi-signature instance.
    pub notary: MultiSigScheme,
    /// The `(t, n−t, n)` finalization multi-signature instance.
    pub finality: MultiSigScheme,
    /// The `(t, t+1, n)` beacon threshold instance (public part).
    pub beacon: Arc<ThresholdPublic>,
    /// The genesis (`root`) block, identical for all parties.
    pub genesis: HashedBlock,
    /// `R_0`, the fixed initial beacon value.
    pub genesis_beacon: BeaconValue,
}

impl fmt::Debug for PublicSetup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PublicSetup")
            .field("config", &self.config)
            .field("genesis", &self.genesis.hash())
            .finish()
    }
}

/// One party's complete key material.
pub struct NodeKeys {
    /// This party's index.
    pub index: NodeIndex,
    /// `S_auth` secret key.
    pub auth: SecretKey,
    /// `S_notary` secret key (multi-signature share key).
    pub notary: SecretKey,
    /// `S_final` secret key.
    pub finality: SecretKey,
    /// `S_beacon` threshold signing handle.
    pub beacon: ThresholdSigner,
    /// The shared public setup.
    pub setup: Arc<PublicSetup>,
}

impl fmt::Debug for NodeKeys {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeKeys({})", self.index)
    }
}

/// Acts as the trusted dealer: generates all key material for a subnet.
///
/// Deterministic in `seed`, so clusters are reproducible.
///
/// # Example
///
/// ```
/// use icc_core::keys::generate_keys;
/// use icc_types::SubnetConfig;
/// let keys = generate_keys(SubnetConfig::new(4), 7);
/// assert_eq!(keys.len(), 4);
/// assert_eq!(keys[0].setup.notary.threshold(), 3); // n - t = 4 - 1
/// ```
pub fn generate_keys(config: SubnetConfig, seed: u64) -> Vec<NodeKeys> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.n();

    let (notary, notary_sks) = MultiSigScheme::generate(
        domains::NOTARY,
        config.notarization_threshold(),
        n,
        &mut rng,
    );
    let (finality, finality_sks) =
        MultiSigScheme::generate(domains::FINAL, config.finalization_threshold(), n, &mut rng);
    let beacon_dealt =
        Dealer::deal_with_domain(domains::BEACON, config.beacon_threshold(), n, &mut rng);

    let auth_sks: Vec<SecretKey> = (0..n).map(|_| SecretKey::generate(&mut rng)).collect();
    let auth_keys: Vec<PublicKey> = auth_sks.iter().map(SecretKey::public_key).collect();

    let genesis = Block::genesis().into_hashed();
    let genesis_beacon = BeaconValue::Genesis(genesis_seed(seed));

    let setup = Arc::new(PublicSetup {
        config,
        auth_keys,
        notary,
        finality,
        beacon: beacon_dealt.public(),
        genesis,
        genesis_beacon,
    });

    let beacon_signers = beacon_dealt.into_signers();
    auth_sks
        .into_iter()
        .zip(notary_sks)
        .zip(finality_sks)
        .zip(beacon_signers)
        .enumerate()
        .map(|(i, (((auth, notary), finality), beacon))| NodeKeys {
            index: NodeIndex::new(i as u32),
            auth,
            notary,
            finality,
            beacon,
            setup: Arc::clone(&setup),
        })
        .collect()
}

fn genesis_seed(seed: u64) -> Hash256 {
    hash_parts("icc-genesis-beacon", &[&seed.to_le_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use icc_types::messages::BlockRef;

    #[test]
    fn setup_is_consistent_across_parties() {
        let keys = generate_keys(SubnetConfig::new(7), 1);
        assert_eq!(keys.len(), 7);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(k.index, NodeIndex::new(i as u32));
            assert_eq!(k.setup.genesis.hash(), keys[0].setup.genesis.hash());
            assert_eq!(k.setup.genesis_beacon, keys[0].setup.genesis_beacon);
            // The party's own auth key matches the registry.
            assert_eq!(k.auth.public_key(), k.setup.auth_keys[i]);
        }
    }

    #[test]
    fn thresholds_match_config() {
        let cfg = SubnetConfig::new(13);
        let keys = generate_keys(cfg, 2);
        let s = &keys[0].setup;
        assert_eq!(s.notary.threshold(), 9);
        assert_eq!(s.finality.threshold(), 9);
        assert_eq!(s.beacon.threshold(), 5);
        assert_eq!(s.notary.parties(), 13);
    }

    #[test]
    fn notary_shares_combine_across_parties() {
        let keys = generate_keys(SubnetConfig::new(4), 3);
        let s = &keys[0].setup;
        let msg = b"some block ref";
        let shares: Vec<_> = keys
            .iter()
            .take(3)
            .map(|k| s.notary.sign_share(&k.notary, k.index.get(), msg))
            .collect();
        let agg = s.notary.combine(msg, shares).unwrap();
        assert!(s.notary.verify(msg, &agg));
    }

    #[test]
    fn beacon_shares_combine_across_parties() {
        let keys = generate_keys(SubnetConfig::new(4), 3);
        let msg = icc_crypto::beacon::beacon_sign_message(1, &keys[0].setup.genesis_beacon);
        let shares: Vec<_> = keys
            .iter()
            .take(2)
            .map(|k| k.beacon.sign_share(&msg))
            .collect();
        let sig = keys[0].setup.beacon.combine(&msg, shares).unwrap();
        assert!(keys[3].setup.beacon.verify(&msg, &sig));
    }

    #[test]
    fn auth_signature_verifies_via_registry() {
        let keys = generate_keys(SubnetConfig::new(4), 4);
        let block_ref = BlockRef::of(keys[2].setup.genesis.block());
        let sig = keys[2].auth.sign(domains::AUTH, &block_ref.sign_bytes());
        assert!(keys[0].setup.auth_keys[2].verify(domains::AUTH, &block_ref.sign_bytes(), &sig));
        assert!(!keys[0].setup.auth_keys[1].verify(domains::AUTH, &block_ref.sign_bytes(), &sig));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_keys(SubnetConfig::new(4), 9);
        let b = generate_keys(SubnetConfig::new(4), 9);
        assert_eq!(a[0].setup.auth_keys, b[0].setup.auth_keys);
        let c = generate_keys(SubnetConfig::new(4), 10);
        assert_ne!(a[0].setup.auth_keys, c[0].setup.auth_keys);
    }
}
