//! Key material and trusted setup (paper §3.1–§3.2).
//!
//! Each party is initialized with a secret key for each of the four
//! schemes and the public material of all parties:
//!
//! * `S_auth` — an ordinary signature key pair per party;
//! * `S_notary`, `S_final` — `(t, n−t, n)` multi-signature instances;
//! * `S_beacon` — a `(t, t+1, n)` threshold instance with
//!   Shamir-shared key, dealt by a trusted dealer (explicitly permitted
//!   by §3.1).
//!
//! [`generate_keys`] plays the trusted dealer and returns one
//! [`NodeKeys`] per party plus the shared [`PublicSetup`].

use crate::epoch::{EpochInfo, EpochSchedule};
use icc_crypto::beacon::BeaconValue;
use icc_crypto::dkg::{reshare_aggregate, ReshareDealing};
use icc_crypto::multisig::MultiSigScheme;
use icc_crypto::sig::{PublicKey, SecretKey};
use icc_crypto::threshold::{Dealer, ThresholdPublic, ThresholdSigner};
use icc_crypto::{hash_parts, Hash256};
use icc_types::block::{Block, HashedBlock};
use icc_types::messages::domains;
use icc_types::{NodeIndex, Round, SubnetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// Public material shared by all parties of one subnet.
pub struct PublicSetup {
    /// The subnet parameters over the node *universe*.
    pub config: SubnetConfig,
    /// Every universe party's `S_auth` public key, by index.
    pub auth_keys: Vec<PublicKey>,
    /// The `(t, n−t, n)` notarization multi-signature instance over the
    /// universe. Per-epoch quorums are checked via `verify_subset`.
    pub notary: MultiSigScheme,
    /// The `(t, n−t, n)` finalization multi-signature instance.
    pub finality: MultiSigScheme,
    /// The epoch-0 beacon threshold instance (public part). Its *group*
    /// key is shared by every epoch, so combined beacon values verify
    /// under it regardless of the epoch that produced them; only share
    /// verification is per-epoch (see [`epoch_of`](Self::epoch_of)).
    pub beacon: Arc<ThresholdPublic>,
    /// The genesis (`root`) block, identical for all parties.
    pub genesis: HashedBlock,
    /// `R_0`, the fixed initial beacon value.
    pub genesis_beacon: BeaconValue,
    /// The resolved membership schedule: one entry per epoch, in order.
    pub epochs: Vec<EpochInfo>,
}

impl PublicSetup {
    /// The epoch index governing `round` (binary search over boundaries).
    pub fn epoch_index_of(&self, round: Round) -> usize {
        match self.epochs.binary_search_by(|e| e.start_round.cmp(&round)) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// The epoch governing `round`.
    pub fn epoch_of(&self, round: Round) -> &EpochInfo {
        &self.epochs[self.epoch_index_of(round)]
    }

    /// The epoch with number `index`, if scheduled.
    pub fn epoch(&self, index: u64) -> Option<&EpochInfo> {
        self.epochs.get(index as usize)
    }

    /// Number of scheduled epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the schedule ever changes membership.
    pub fn has_membership_changes(&self) -> bool {
        self.epochs.windows(2).any(|w| w[0].members != w[1].members)
    }
}

impl fmt::Debug for PublicSetup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PublicSetup")
            .field("config", &self.config)
            .field("genesis", &self.genesis.hash())
            .finish()
    }
}

/// One party's complete key material.
pub struct NodeKeys {
    /// This party's index.
    pub index: NodeIndex,
    /// `S_auth` secret key.
    pub auth: SecretKey,
    /// `S_notary` secret key (multi-signature share key).
    pub notary: SecretKey,
    /// `S_final` secret key.
    pub finality: SecretKey,
    /// `S_beacon` threshold signing handles, one per epoch; `None` in
    /// epochs this party is not a member of.
    pub epoch_beacons: Vec<Option<ThresholdSigner>>,
    /// The shared public setup.
    pub setup: Arc<PublicSetup>,
}

impl NodeKeys {
    /// The beacon signing handle valid for `round`, or `None` when this
    /// party is not a member of the round's epoch.
    pub fn beacon_signer_for(&self, round: Round) -> Option<&ThresholdSigner> {
        self.epoch_beacons[self.setup.epoch_index_of(round)].as_ref()
    }

    /// The epoch-0 beacon signing handle — the single-epoch call sites'
    /// shorthand.
    ///
    /// # Panics
    ///
    /// Panics if this party is not a member of epoch 0.
    pub fn beacon(&self) -> &ThresholdSigner {
        self.epoch_beacons[0]
            .as_ref()
            .expect("party is not a member of epoch 0")
    }

    /// Whether this party is a member of the epoch governing `round`.
    pub fn is_member_at(&self, round: Round) -> bool {
        self.setup.epoch_of(round).is_member(self.index.get())
    }
}

impl fmt::Debug for NodeKeys {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeKeys({})", self.index)
    }
}

/// Acts as the trusted dealer: generates all key material for a subnet.
///
/// Deterministic in `seed`, so clusters are reproducible.
///
/// # Example
///
/// ```
/// use icc_core::keys::generate_keys;
/// use icc_types::SubnetConfig;
/// let keys = generate_keys(SubnetConfig::new(4), 7);
/// assert_eq!(keys.len(), 4);
/// assert_eq!(keys[0].setup.notary.threshold(), 3); // n - t = 4 - 1
/// ```
pub fn generate_keys(config: SubnetConfig, seed: u64) -> Vec<NodeKeys> {
    generate_keys_with_schedule(config, seed, &EpochSchedule::static_membership(config.n()))
}

/// The epoch-aware dealer: generates universe-wide `S_auth` / `S_notary`
/// / `S_final` material, deals the epoch-0 beacon over the first member
/// set, then *reshares* the beacon key at every scheduled boundary
/// (each old member deals a [`ReshareDealing`] of its existing share;
/// [`reshare_aggregate`] verifies every dealing and interpolates the new
/// share vector). The group beacon key — and so the beacon value
/// sequence — is identical in every epoch.
///
/// Returns one [`NodeKeys`] per *universe* party; parties outside an
/// epoch's member set carry `None` beacon handles for that epoch.
///
/// Deterministic in `seed`; with a static full-universe schedule the
/// output is identical to [`generate_keys`].
///
/// # Panics
///
/// Panics if `config.n()` is smaller than the schedule's universe, or
/// if resharing fails (impossible for honestly generated dealings).
pub fn generate_keys_with_schedule(
    config: SubnetConfig,
    seed: u64,
    schedule: &EpochSchedule,
) -> Vec<NodeKeys> {
    let n = config.n();
    assert!(
        n >= schedule.universe(),
        "universe config covers {} parties, schedule mentions index {}",
        n,
        schedule.universe() - 1
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let (notary, notary_sks) = MultiSigScheme::generate(
        domains::NOTARY,
        config.notarization_threshold(),
        n,
        &mut rng,
    );
    let (finality, finality_sks) =
        MultiSigScheme::generate(domains::FINAL, config.finalization_threshold(), n, &mut rng);

    // Per-epoch subnet parameters: the universe config when the member
    // set is the full universe (so custom `t` choices survive), else
    // derived from the member count.
    let epoch_config = |members: &[u32]| -> SubnetConfig {
        if members.len() == n {
            config
        } else {
            SubnetConfig::new(members.len())
        }
    };

    // Epoch 0: a fresh deal over the first member set's positions.
    let first = &schedule.epochs()[0];
    let cfg0 = epoch_config(&first.members);
    let dealt0 = Dealer::deal_with_domain(
        domains::BEACON,
        cfg0.beacon_threshold(),
        first.members.len(),
        &mut rng,
    );

    // Later epochs: reshare from the previous epoch's signers. Every
    // dealing is verified inside `reshare_aggregate` (binding to the
    // registered share commitments plus per-position consistency), so
    // this path exercises the same checks a distributed run would.
    let mut dealt = vec![dealt0];
    for spec in &schedule.epochs()[1..] {
        let prev = dealt.last().expect("epoch 0 exists");
        let cfg = epoch_config(&spec.members);
        let new_threshold = cfg.beacon_threshold();
        let dealings: Vec<ReshareDealing> = prev
            .signers()
            .iter()
            .map(|s| ReshareDealing::deal(s, new_threshold, spec.members.len(), &mut rng))
            .collect();
        let next = reshare_aggregate(&prev.public(), new_threshold, &dealings)
            .expect("honest resharing aggregates");
        dealt.push(next);
    }

    let epochs: Vec<EpochInfo> = schedule
        .epochs()
        .iter()
        .zip(&dealt)
        .enumerate()
        .map(|(i, (spec, d))| EpochInfo {
            index: i as u64,
            start_round: spec.start_round,
            members: spec.members.clone(),
            config: epoch_config(&spec.members),
            beacon: d.public(),
        })
        .collect();

    let auth_sks: Vec<SecretKey> = (0..n).map(|_| SecretKey::generate(&mut rng)).collect();
    let auth_keys: Vec<PublicKey> = auth_sks.iter().map(SecretKey::public_key).collect();

    let genesis = Block::genesis().into_hashed();
    let genesis_beacon = BeaconValue::Genesis(genesis_seed(seed));

    let setup = Arc::new(PublicSetup {
        config,
        auth_keys,
        notary,
        finality,
        beacon: epochs[0].beacon.clone(),
        genesis,
        genesis_beacon,
        epochs,
    });

    // Distribute each epoch's signing handles to the member occupying
    // the corresponding position.
    let epoch_count = schedule.len();
    let mut per_node: Vec<Vec<Option<ThresholdSigner>>> = (0..n)
        .map(|_| (0..epoch_count).map(|_| None).collect())
        .collect();
    for (e, (spec, d)) in schedule.epochs().iter().zip(dealt).enumerate() {
        for (pos, signer) in d.into_signers().into_iter().enumerate() {
            per_node[spec.members[pos] as usize][e] = Some(signer);
        }
    }

    auth_sks
        .into_iter()
        .zip(notary_sks)
        .zip(finality_sks)
        .zip(per_node)
        .enumerate()
        .map(
            |(i, (((auth, notary), finality), epoch_beacons))| NodeKeys {
                index: NodeIndex::new(i as u32),
                auth,
                notary,
                finality,
                epoch_beacons,
                setup: Arc::clone(&setup),
            },
        )
        .collect()
}

fn genesis_seed(seed: u64) -> Hash256 {
    hash_parts("icc-genesis-beacon", &[&seed.to_le_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use icc_types::messages::BlockRef;

    #[test]
    fn setup_is_consistent_across_parties() {
        let keys = generate_keys(SubnetConfig::new(7), 1);
        assert_eq!(keys.len(), 7);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(k.index, NodeIndex::new(i as u32));
            assert_eq!(k.setup.genesis.hash(), keys[0].setup.genesis.hash());
            assert_eq!(k.setup.genesis_beacon, keys[0].setup.genesis_beacon);
            // The party's own auth key matches the registry.
            assert_eq!(k.auth.public_key(), k.setup.auth_keys[i]);
        }
    }

    #[test]
    fn thresholds_match_config() {
        let cfg = SubnetConfig::new(13);
        let keys = generate_keys(cfg, 2);
        let s = &keys[0].setup;
        assert_eq!(s.notary.threshold(), 9);
        assert_eq!(s.finality.threshold(), 9);
        assert_eq!(s.beacon.threshold(), 5);
        assert_eq!(s.notary.parties(), 13);
    }

    #[test]
    fn notary_shares_combine_across_parties() {
        let keys = generate_keys(SubnetConfig::new(4), 3);
        let s = &keys[0].setup;
        let msg = b"some block ref";
        let shares: Vec<_> = keys
            .iter()
            .take(3)
            .map(|k| s.notary.sign_share(&k.notary, k.index.get(), msg))
            .collect();
        let agg = s.notary.combine(msg, shares).unwrap();
        assert!(s.notary.verify(msg, &agg));
    }

    #[test]
    fn beacon_shares_combine_across_parties() {
        let keys = generate_keys(SubnetConfig::new(4), 3);
        let msg = icc_crypto::beacon::beacon_sign_message(1, &keys[0].setup.genesis_beacon);
        let shares: Vec<_> = keys
            .iter()
            .take(2)
            .map(|k| k.beacon().sign_share(&msg))
            .collect();
        let sig = keys[0].setup.beacon.combine(&msg, shares).unwrap();
        assert!(keys[3].setup.beacon.verify(&msg, &sig));
    }

    #[test]
    fn auth_signature_verifies_via_registry() {
        let keys = generate_keys(SubnetConfig::new(4), 4);
        let block_ref = BlockRef::of(keys[2].setup.genesis.block());
        let sig = keys[2].auth.sign(domains::AUTH, &block_ref.sign_bytes());
        assert!(keys[0].setup.auth_keys[2].verify(domains::AUTH, &block_ref.sign_bytes(), &sig));
        assert!(!keys[0].setup.auth_keys[1].verify(domains::AUTH, &block_ref.sign_bytes(), &sig));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_keys(SubnetConfig::new(4), 9);
        let b = generate_keys(SubnetConfig::new(4), 9);
        assert_eq!(a[0].setup.auth_keys, b[0].setup.auth_keys);
        let c = generate_keys(SubnetConfig::new(4), 10);
        assert_ne!(a[0].setup.auth_keys, c[0].setup.auth_keys);
    }

    #[test]
    fn static_schedule_matches_plain_generation() {
        let plain = generate_keys(SubnetConfig::new(4), 9);
        let sched = generate_keys_with_schedule(
            SubnetConfig::new(4),
            9,
            &EpochSchedule::static_membership(4),
        );
        assert_eq!(plain[0].setup.auth_keys, sched[0].setup.auth_keys);
        assert_eq!(
            plain[0].setup.beacon.global_key(),
            sched[0].setup.beacon.global_key()
        );
        assert_eq!(sched[0].setup.epoch_count(), 1);
        assert!(!sched[0].setup.has_membership_changes());
    }

    #[test]
    fn reshared_epochs_share_one_group_key_and_beacon_sequence() {
        use crate::epoch::EpochSpec;
        use icc_types::Round;
        // Universe of 5; epoch 0 = {0,1,2,3}, epoch 1 replaces 3 with 4.
        let schedule = EpochSchedule::new(vec![
            EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3]),
            EpochSpec::new(Round::new(10), vec![0, 1, 2, 4]),
        ]);
        let keys = generate_keys_with_schedule(SubnetConfig::new(5), 5, &schedule);
        let setup = &keys[0].setup;
        assert_eq!(setup.epoch_count(), 2);
        assert!(setup.has_membership_changes());
        let e0 = setup.epoch_of(Round::new(9));
        let e1 = setup.epoch_of(Round::new(10));
        assert_eq!((e0.index, e1.index), (0, 1));
        assert_eq!(e0.beacon.global_key(), e1.beacon.global_key());

        // A beacon value for an epoch-1 round combined from epoch-1
        // members' shares verifies under the epoch-0 public instance
        // (same group key): the beacon survives resharing.
        let msg = icc_crypto::beacon::beacon_sign_message(10, &setup.genesis_beacon);
        let shares: Vec<_> = [0usize, 1, 4]
            .iter()
            .map(|&i| {
                keys[i]
                    .beacon_signer_for(Round::new(10))
                    .expect("epoch-1 member")
                    .sign_share(&msg)
            })
            .take(e1.beacon_threshold())
            .collect();
        let sig = e1.beacon.combine(&msg, shares).unwrap();
        assert!(setup.beacon.verify(&msg, &sig));

        // Node 3 left: no handle for epoch 1. Node 4 joined: none for 0.
        assert!(keys[3].beacon_signer_for(Round::new(10)).is_none());
        assert!(keys[4].beacon_signer_for(Round::new(9)).is_none());
        assert!(keys[3].is_member_at(Round::new(9)));
        assert!(!keys[3].is_member_at(Round::new(10)));

        // An old-epoch share does not verify under the new epoch's
        // share commitments (positions reshared).
        let stale = keys[3].beacon_signer_for(Round::new(9)).unwrap();
        let old_share = stale.sign_share(&msg);
        assert!(!e1.beacon.verify_share(&msg, &old_share));
    }

    #[test]
    fn epoch_lookup_is_by_boundary_round() {
        use crate::epoch::EpochSpec;
        use icc_types::Round;
        let schedule = EpochSchedule::new(vec![
            EpochSpec::new(Round::GENESIS, vec![0, 1, 2]),
            EpochSpec::new(Round::new(5), vec![0, 1, 3]),
            EpochSpec::new(Round::new(12), vec![1, 2, 3]),
        ]);
        let keys = generate_keys_with_schedule(SubnetConfig::new(4), 1, &schedule);
        let setup = &keys[0].setup;
        assert_eq!(setup.epoch_index_of(Round::GENESIS), 0);
        assert_eq!(setup.epoch_index_of(Round::new(4)), 0);
        assert_eq!(setup.epoch_index_of(Round::new(5)), 1);
        assert_eq!(setup.epoch_index_of(Round::new(11)), 1);
        assert_eq!(setup.epoch_index_of(Round::new(12)), 2);
        assert_eq!(setup.epoch_index_of(Round::new(1000)), 2);
        let e2 = setup.epoch(2).unwrap();
        assert_eq!(e2.position_of(2), Some(1));
        assert_eq!(e2.position_of(0), None);
    }
}
