//! Crash–recovery round-trip properties of the durable replica state
//! (checkpoint + write-ahead log).
//!
//! A synchronous 4-party mesh drives real `ConsensusCore`s for a random
//! number of steps, then crashes and restores each core in place. The
//! restore must reproduce the §3.4 classification the node held before
//! the crash — same committed round, same latest finalized block, same
//! highest notarized round — **with zero signature re-verification**:
//! every WAL artifact was verified (or produced) before it was logged,
//! so replay goes through the pool's trusted insert path and the
//! verification cache, never the crypto.

use icc_core::byzantine::Behavior;
use icc_core::consensus::ConsensusCore;
use icc_core::delays::StaticDelays;
use icc_core::keys::generate_keys;
use icc_core::recovery::CatchUpError;
use icc_core::NodeEvent;
use icc_types::messages::ConsensusMessage;
use icc_types::{Command, Round, SimDuration, SimTime, SubnetConfig};
use proptest::prelude::*;

const N: usize = 4;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// A lockstep mesh: every broadcast from iteration `i` is delivered to
/// every other party at iteration `i + 1`; wakeups fire each iteration.
struct Mesh {
    cores: Vec<ConsensusCore>,
    queue: Vec<(usize, ConsensusMessage)>,
    now: SimTime,
}

impl Mesh {
    fn new(seed: u64, checkpoint_interval: u64) -> Mesh {
        let keys = generate_keys(SubnetConfig::new(N), seed);
        let mut cores: Vec<ConsensusCore> = keys
            .into_iter()
            .map(|k| {
                ConsensusCore::new(
                    k,
                    StaticDelays::new(ms(10), SimDuration::ZERO),
                    Behavior::Honest,
                )
                .with_checkpoint_interval(checkpoint_interval)
            })
            .collect();
        let mut queue = Vec::new();
        for (i, c) in cores.iter_mut().enumerate() {
            let step = c.start(SimTime::ZERO);
            queue.extend(step.broadcasts.into_iter().map(|m| (i, m)));
        }
        Mesh {
            cores,
            queue,
            now: SimTime::ZERO,
        }
    }

    fn run(&mut self, iterations: u64) {
        for it in 0..iterations {
            self.now += ms(1);
            // The occasional client command keeps payloads non-empty.
            if it % 7 == 0 {
                let tag = self.now.as_micros().to_le_bytes().to_vec();
                for c in self.cores.iter_mut() {
                    c.on_command(Command::new(tag.clone()));
                }
            }
            let batch = std::mem::take(&mut self.queue);
            for (from, msg) in &batch {
                for (i, c) in self.cores.iter_mut().enumerate() {
                    if i == *from {
                        continue;
                    }
                    let step = c.on_message(self.now, msg);
                    self.queue
                        .extend(step.broadcasts.into_iter().map(|m| (i, m)));
                }
            }
            for (i, c) in self.cores.iter_mut().enumerate() {
                let step = c.on_wakeup(self.now);
                self.queue
                    .extend(step.broadcasts.into_iter().map(|m| (i, m)));
            }
        }
    }

    fn min_committed(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.committed_round().get())
            .min()
            .unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash + restore reproduces the pre-crash classification with
    /// zero signature verifications, for every party, at any point in
    /// the run, for any checkpoint cadence.
    #[test]
    fn snapshot_restore_round_trips_classification(
        seed in 0u64..1000,
        iterations in 30u64..120,
        interval in 1u64..12,
    ) {
        let mut mesh = Mesh::new(seed, interval);
        mesh.run(iterations);
        let now = mesh.now;
        for core in mesh.cores.iter_mut() {
            let kmax = core.committed_round();
            let fin_round = core.pool().latest_finalized_round();
            let fin_block = core.pool().latest_finalized_block().map(|b| b.hash());
            let notz_round = core.pool().highest_notarized_round();

            core.crash();
            let _step = core.restore(now);

            // Zero re-verification: the pool was rebuilt entirely from
            // the trusted WAL path (crash() reset its counters, so any
            // signature check during restore would show here).
            prop_assert_eq!(core.pool().stats().verify_calls, 0);
            // Classification round-trips.
            prop_assert_eq!(core.committed_round(), kmax);
            prop_assert_eq!(core.pool().latest_finalized_round(), fin_round);
            prop_assert_eq!(
                core.pool().latest_finalized_block().map(|b| b.hash()),
                fin_block
            );
            prop_assert_eq!(core.pool().highest_notarized_round(), notz_round);
            // The replica resumes *past* its durable state, never inside
            // it (it must not equivocate in rounds it already acted in).
            prop_assert!(core.current_round() > kmax);
        }
    }
}

/// After a crash + restore the replica resumes from its durable state
/// but may be missing the in-flight round's block bodies (they were
/// never certified, so never WAL'd, and ICC0 does not retransmit). A
/// certified catch-up package from a peer closes exactly that gap: the
/// replica fast-forwards and participates again at full speed.
#[test]
fn restored_replica_rejoins_via_catch_up_package() {
    let mut mesh = Mesh::new(7, 4);
    mesh.run(80);
    let before = mesh.min_committed();
    assert!(before > 5, "mesh must be committing (got {before})");

    let now = mesh.now;
    mesh.cores[2].crash();
    let step = mesh.cores[2].restore(now);
    assert_eq!(mesh.cores[2].recovery_stats().restarts, 1);
    mesh.queue
        .extend(step.broadcasts.into_iter().map(|m| (2, m)));

    // Degraded interlude: the other three (= n − t) keep committing,
    // slower when the stuck party would have been the leader.
    mesh.run(60);
    let mid = mesh.min_committed();
    assert!(
        mid > before,
        "mesh must stay live degraded: {before} -> {mid}"
    );

    // A peer serves a certified catch-up package for the stuck party.
    // The horizon (not the committed round) is what the stuck party
    // must report: flooded finalizations kept its `kmax` current while
    // its beacon chain is parked at the crash round.
    let have = mesh.cores[2].catch_up_horizon();
    assert!(
        have < mesh.cores[2].committed_round(),
        "the restored party's beacon frontier trails its committed tip"
    );
    let pkg = mesh.cores[0]
        .build_catch_up_package(have)
        .expect("peer is ahead and has the beacon segment");
    let step = mesh.cores[2]
        .apply_catch_up(&pkg, mesh.now)
        .expect("honest package verifies");
    assert!(
        step.events
            .iter()
            .any(|e| matches!(e, icc_core::NodeEvent::CaughtUp { .. })),
        "catch-up must be observable in the event trace"
    );
    assert!(mesh.cores[2].committed_round() >= pkg.round());
    assert!(mesh.cores[2].current_round() > pkg.round());
    assert_eq!(mesh.cores[2].recovery_stats().catch_up_applied, 1);
    mesh.queue
        .extend(step.broadcasts.into_iter().map(|m| (2, m)));

    // Back to full speed: all four participate again.
    mesh.run(80);
    let after = mesh.min_committed();
    let detail: Vec<(u64, u64)> = mesh
        .cores
        .iter()
        .map(|c| (c.committed_round().get(), c.current_round().get()))
        .collect();
    assert!(
        after > mid + 20,
        "mesh did not recover full speed: {mid} -> {after} ({detail:?})"
    );
    let r2 = mesh.cores[2].current_round().get();
    let r0 = mesh.cores[0].current_round().get();
    assert!(
        r0.abs_diff(r2) <= 2,
        "restored party must track the frontier ({detail:?})"
    );

    // Agreement: the restored party's latest finalized block is part of
    // an untouched peer's chain (or the peer is simply behind it).
    let restored = mesh.cores[2]
        .pool()
        .latest_finalized_block()
        .unwrap()
        .hash();
    assert!(
        mesh.cores[0].pool().block(&restored).is_some()
            || mesh.cores[0].pool().latest_finalized_round()
                < mesh.cores[2].pool().latest_finalized_round(),
        "restored party finalized a block its peer does not hold"
    );
}

/// Safety of catch-up does not rest on trusting the serving peer: every
/// tampered variant of an otherwise-valid package is rejected wholesale
/// — with the matching [`CatchUpError`], with nothing installed — and
/// the untampered package still verifies afterwards.
#[test]
fn forged_catch_up_packages_rejected_wholesale() {
    let mut mesh = Mesh::new(11, 4);
    mesh.run(60);
    let pkg = mesh.cores[0]
        .build_catch_up_package(Round::GENESIS)
        .expect("server has a finalized chain and an unpurged beacon history");
    assert!(pkg.round() > Round::new(5), "run long enough to finalize");

    // A fresh replica of the same subnet (party 1's keys): it holds only
    // the genesis beacon, so the package must carry everything.
    let keys = generate_keys(SubnetConfig::new(N), 11)
        .into_iter()
        .nth(1)
        .unwrap();
    let mut core = ConsensusCore::new(
        keys,
        StaticDelays::new(ms(10), SimDuration::ZERO),
        Behavior::Honest,
    );
    core.start(SimTime::ZERO);
    let now = mesh.now;

    // Forged finalization: an aggregate from the wrong signing domain.
    let mut bad = pkg.clone();
    bad.finalization.sig = bad.notarization.sig.clone();
    assert_eq!(
        core.apply_catch_up(&bad, now).unwrap_err(),
        CatchUpError::BadFinalization
    );

    // Certificates that do not reference the packaged block.
    let mut bad = pkg.clone();
    bad.finalization.block_ref.round = bad.finalization.block_ref.round.next();
    assert_eq!(
        core.apply_catch_up(&bad, now).unwrap_err(),
        CatchUpError::Mismatched
    );

    // Truncated beacon chain: the requester could never enter the round
    // after the finalized block.
    let mut bad = pkg.clone();
    bad.beacons.pop();
    assert_eq!(
        core.apply_catch_up(&bad, now).unwrap_err(),
        CatchUpError::Truncated
    );

    // Reordered beacon segment: no longer anchored at a local value.
    let mut bad = pkg.clone();
    bad.beacons.swap(0, 1);
    assert_eq!(
        core.apply_catch_up(&bad, now).unwrap_err(),
        CatchUpError::BadBeacon
    );

    // Nothing was installed by any rejected package.
    assert_eq!(core.committed_round(), Round::GENESIS);
    assert_eq!(core.recovery_stats().catch_up_applied, 0);
    assert!(core.pool().stats().rejected >= 4);

    // The honest package still verifies and fast-forwards the replica.
    let step = core
        .apply_catch_up(&pkg, now)
        .expect("untampered package verifies");
    assert_eq!(core.committed_round(), pkg.round());
    assert!(core.current_round() > pkg.round());
    assert!(step
        .events
        .iter()
        .any(|e| matches!(e, NodeEvent::CaughtUp { .. })));
    assert!(step
        .events
        .iter()
        .any(|e| matches!(e, NodeEvent::Committed { .. })));
    assert_eq!(core.recovery_stats().catch_up_applied, 1);

    // Replaying the same package is stale: both frontiers already moved.
    assert_eq!(
        core.apply_catch_up(&pkg, now).unwrap_err(),
        CatchUpError::Stale
    );
}
