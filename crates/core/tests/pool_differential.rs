//! Differential property test: the two-tier pipeline pool must reach
//! exactly the classification (§3.4: valid / notarized / finalized) of
//! the seed's eager-verification pool on arbitrary artifact streams —
//! any interleaving, duplicates, forged artifacts, and blocks arriving
//! before the parent notarization that makes them valid (pending
//! promotions).
//!
//! The eager model ([`EagerPool`]) is the pre-refactor implementation
//! kept verbatim in `pool::reference`; the pipeline ([`Pool`]) admits
//! into an unvalidated section, verifies in the ChangeSet step and only
//! then classifies. Equal final classification on random streams is the
//! refactor's correctness argument; the verification-count comparison
//! at the bottom is its performance argument.

use icc_core::artifacts;
use icc_core::keys::{generate_keys, NodeKeys};
use icc_core::pool::{EagerPool, Pool};
use icc_crypto::Hash256;
use icc_types::block::{Block, Payload};
use icc_types::messages::{BlockRef, ConsensusMessage, Finalization, Notarization};
use icc_types::{NodeIndex, Round, SubnetConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Block tree: two forks per round for three rounds, both children of
/// the previous round's first fork (so fork B of each round exercises
/// the valid-but-not-extended paths).
struct Universe {
    keys: Vec<NodeKeys>,
    /// Every message in the universe, duplicated freely by the stream.
    messages: Vec<ConsensusMessage>,
    /// Hashes of all real (non-forged) blocks.
    block_hashes: Vec<Hash256>,
}

fn notarization_of(keys: &[NodeKeys], block_ref: BlockRef) -> Notarization {
    let setup = &keys[0].setup;
    let shares = (0..setup.config.notarization_threshold())
        .map(|i| artifacts::notarization_share(&keys[i], block_ref).share);
    Notarization {
        block_ref,
        sig: setup
            .notary
            .combine(&block_ref.sign_bytes(), shares)
            .expect("threshold shares combine"),
    }
}

fn finalization_of(keys: &[NodeKeys], block_ref: BlockRef) -> Finalization {
    let setup = &keys[0].setup;
    let shares = (0..setup.config.finalization_threshold())
        .map(|i| artifacts::finalization_share(&keys[i], block_ref).share);
    Finalization {
        block_ref,
        sig: setup
            .finality
            .combine(&block_ref.sign_bytes(), shares)
            .expect("threshold shares combine"),
    }
}

fn build_universe(seed: u64) -> Universe {
    let n = 4usize;
    let keys = generate_keys(SubnetConfig::new(n), seed);
    let setup = keys[0].setup.clone();
    let mut messages = Vec::new();
    let mut block_hashes = Vec::new();

    let mut parent = setup.genesis.clone();
    let mut parent_notarization: Option<Notarization> = None;
    for round in 1..=3u64 {
        let round = Round::new(round);
        // Two forks per round by different proposers.
        let forks: Vec<_> = (0..2usize)
            .map(|f| {
                let proposer = (round.get() as usize + f) % n;
                let block = Block::new(
                    round,
                    NodeIndex::new(proposer as u32),
                    parent.hash(),
                    Payload::empty(),
                )
                .into_hashed();
                let proposal = artifacts::proposal(
                    &keys[proposer],
                    block.clone(),
                    parent_notarization.clone(),
                );
                (block, proposal)
            })
            .collect();
        for (block, proposal) in &forks {
            let block_ref = BlockRef::of_hashed(block);
            block_hashes.push(block.hash());
            messages.push(ConsensusMessage::Proposal(proposal.clone()));
            // Shares from every party over both forks.
            for k in &keys {
                messages.push(ConsensusMessage::NotarizationShare(
                    artifacts::notarization_share(k, block_ref),
                ));
                messages.push(ConsensusMessage::FinalizationShare(
                    artifacts::finalization_share(k, block_ref),
                ));
            }
        }
        // Aggregates for fork A only; fork B stays share-only (so the
        // completable-aggregate path differs from the aggregate path).
        let (block_a, _) = &forks[0];
        let ref_a = BlockRef::of_hashed(block_a);
        let notarization = notarization_of(&keys, ref_a);
        messages.push(ConsensusMessage::Notarization(notarization.clone()));
        messages.push(ConsensusMessage::Finalization(finalization_of(
            &keys, ref_a,
        )));
        // Beacon shares for this round from every party (verified at
        // combine time only — §3.4).
        if round == Round::new(1) {
            for k in &keys {
                messages.push(ConsensusMessage::BeaconShare(artifacts::beacon_share(
                    k,
                    round,
                    &setup.genesis_beacon,
                )));
            }
        }
        parent = block_a.clone();
        parent_notarization = Some(notarization);
    }

    // Forged artifacts: both pools must reject them identically.
    // (1) A proposal whose authenticator was produced by the wrong key.
    let forged_block = Block::new(
        Round::new(1),
        NodeIndex::new(0),
        setup.genesis.hash(),
        Payload::from_commands(vec![icc_types::Command::new(b"forged".to_vec())]),
    )
    .into_hashed();
    let mut forged_proposal = artifacts::proposal(&keys[1], forged_block, None);
    // keys[1] signed, but the block names proposer 0: S_auth must fail.
    forged_proposal.parent_notarization = None;
    messages.push(ConsensusMessage::Proposal(forged_proposal));
    // (2) A notarization share transplanted onto a different block ref.
    let real_share = artifacts::notarization_share(
        &keys[2],
        BlockRef {
            round: Round::new(2),
            proposer: NodeIndex::new(9),
            hash: Hash256([0xAB; 32]),
        },
    );
    let mut transplanted = real_share;
    transplanted.block_ref = BlockRef {
        round: Round::new(1),
        proposer: NodeIndex::new(1),
        hash: block_hashes[0],
    };
    messages.push(ConsensusMessage::NotarizationShare(transplanted));

    Universe {
        keys,
        messages,
        block_hashes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Same classification as the eager reference on random streams.
    #[test]
    fn prop_two_tier_matches_eager_classification(
        seed in 0u64..500,
        picks in proptest::collection::vec(any::<u16>(), 10..160),
        beacon_probe in any::<u16>(),
    ) {
        let universe = build_universe(seed);
        let setup = universe.keys[0].setup.clone();
        let mut pipeline = Pool::new(Arc::clone(&setup));
        let mut eager = EagerPool::new(Arc::clone(&setup));

        for (i, pick) in picks.iter().enumerate() {
            let msg = &universe.messages[*pick as usize % universe.messages.len()];
            pipeline.insert(msg);
            eager.insert(msg);
            // Occasionally try combining the beacon mid-stream, so
            // partial share sets are exercised on both sides.
            if i as u16 % 13 == beacon_probe % 13 {
                pipeline.try_compute_beacon(Round::new(1));
                eager.try_compute_beacon(Round::new(1));
            }
        }
        pipeline.try_compute_beacon(Round::new(1));
        eager.try_compute_beacon(Round::new(1));

        for hash in &universe.block_hashes {
            prop_assert_eq!(
                pipeline.is_valid(hash), eager.is_valid(hash),
                "valid mismatch for {:?}", hash
            );
            prop_assert_eq!(
                pipeline.is_notarized(hash), eager.is_notarized(hash),
                "notarized mismatch for {:?}", hash
            );
            prop_assert_eq!(
                pipeline.is_finalized(hash), eager.is_finalized(hash),
                "finalized mismatch for {:?}", hash
            );
        }
        prop_assert_eq!(
            pipeline.beacon(Round::new(1)).copied(),
            eager.beacon(Round::new(1)).copied(),
            "beacon mismatch"
        );
        prop_assert_eq!(pipeline.block_count(), eager.block_count());

        // The performance half of the argument: the pipeline never
        // verifies more than the eager pool, and any duplicate in the
        // stream must have been absorbed without crypto.
        prop_assert!(
            pipeline.stats().verify_calls <= eager.verify_calls(),
            "pipeline verified {} > eager {}",
            pipeline.stats().verify_calls, eager.verify_calls()
        );
    }
}
