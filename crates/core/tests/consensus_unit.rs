//! Direct state-machine tests of `ConsensusCore`: Figure 1's clauses
//! exercised one message at a time, with hand-built artifacts, no
//! simulator in the loop. These pin down the *when* of every protocol
//! action (delay gating, pipelining, disqualification) more precisely
//! than the end-to-end tests can.

use icc_core::artifacts;
use icc_core::byzantine::Behavior;
use icc_core::consensus::ConsensusCore;
use icc_core::delays::StaticDelays;
use icc_core::events::NodeEvent;
use icc_core::keys::{generate_keys, NodeKeys};
use icc_crypto::beacon::{BeaconValue, RankPermutation};
use icc_types::block::{Block, HashedBlock, Payload};
use icc_types::messages::{BlockRef, ConsensusMessage, Notarization};
use icc_types::{Command, Round, SimDuration, SimTime, SubnetConfig};

const N: usize = 4; // t = 1: notarization quorum 3, beacon quorum 2

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn t(v: u64) -> SimTime {
    SimTime::ZERO + ms(v)
}

/// Keys for a 4-party subnet and a core for party 0 with
/// Δbnd = 100 ms, ε = 0 (Δprop(r) = Δntry(r) = 200ms·r).
fn setup() -> (Vec<NodeKeys>, ConsensusCore) {
    let mut keys = generate_keys(SubnetConfig::new(N), 5);
    let k0 = keys.remove(0);
    let core = ConsensusCore::new(
        k0,
        StaticDelays::new(ms(100), SimDuration::ZERO),
        Behavior::Honest,
    );
    let keys = generate_keys(SubnetConfig::new(N), 5);
    (keys, core)
}

fn kinds(msgs: &[ConsensusMessage]) -> Vec<&'static str> {
    msgs.iter().map(|m| m.kind()).collect()
}

/// The round-1 permutation all parties derive (needed to know who the
/// round-1 leader is in these deterministic tests).
fn round1_perm(keys: &[NodeKeys]) -> RankPermutation {
    // Compute beacon 1 from two shares.
    let prev = keys[0].setup.genesis_beacon;
    let msg = icc_crypto::beacon::beacon_sign_message(1, &prev);
    let shares = vec![
        keys[0].beacon().sign_share(&msg),
        keys[1].beacon().sign_share(&msg),
    ];
    let sig = keys[0].setup.beacon.combine(&msg, shares).unwrap();
    RankPermutation::derive(&BeaconValue::Signature(sig), N)
}

fn feed_beacon_round1(
    core: &mut ConsensusCore,
    keys: &[NodeKeys],
    now: SimTime,
) -> Vec<ConsensusMessage> {
    let prev = keys[0].setup.genesis_beacon;
    let share = artifacts::beacon_share(&keys[1], Round::new(1), &prev);
    core.on_message(now, &ConsensusMessage::BeaconShare(share))
        .broadcasts
}

fn block_from(keys: &NodeKeys, round: u64, parent: icc_crypto::Hash256, tag: u8) -> HashedBlock {
    Block::new(
        Round::new(round),
        keys.index,
        parent,
        Payload::from_commands(vec![Command::new(vec![tag])]),
    )
    .into_hashed()
}

fn notarize(keys: &[NodeKeys], block: &HashedBlock) -> Notarization {
    let r = BlockRef::of_hashed(block);
    let shares = keys
        .iter()
        .take(3)
        .map(|k| artifacts::notarization_share(k, r).share);
    Notarization {
        block_ref: r,
        sig: keys[0]
            .setup
            .notary
            .combine(&r.sign_bytes(), shares)
            .unwrap(),
    }
}

#[test]
fn start_broadcasts_round1_beacon_share_only() {
    let (_, mut core) = setup();
    let step = core.start(SimTime::ZERO);
    assert_eq!(kinds(&step.broadcasts), vec!["beacon-share"]);
    assert_eq!(core.current_round(), Round::new(1));
    // Without t+1 = 2 shares, the round has not started: no wakeup yet.
    assert!(step.next_wakeup.is_none());
}

#[test]
fn second_beacon_share_enters_round_and_pipelines_next() {
    let (keys, mut core) = setup();
    core.start(SimTime::ZERO);
    let step = core.on_message(
        t(10),
        &ConsensusMessage::BeaconShare(artifacts::beacon_share(
            &keys[1],
            Round::new(1),
            &keys[0].setup.genesis_beacon,
        )),
    );
    // Pipelining: the share for round 2 goes out the moment beacon 1 is
    // known.
    let bshares: Vec<_> = step
        .broadcasts
        .iter()
        .filter_map(|m| match m {
            ConsensusMessage::BeaconShare(b) => Some(b.round),
            _ => None,
        })
        .collect();
    assert_eq!(bshares, vec![Round::new(2)]);
}

#[test]
fn leader_proposes_immediately_nonleader_waits_2_delta_bnd_per_rank() {
    let (keys, mut core) = setup();
    core.start(SimTime::ZERO);
    let step = feed_beacon_round1(&mut core, &keys, t(10));
    let perm = round1_perm(&keys);
    let my_rank = perm.rank_of(0);
    let proposals = step.iter().filter(|m| m.kind() == "proposal").count();
    if my_rank == 0 {
        assert_eq!(proposals, 1, "leader proposes at Δprop(0) = 0");
    } else {
        assert_eq!(proposals, 0, "rank {my_rank} must wait");
        // The wakeup must be exactly t0 + 200ms·rank.
        let step2 = core.on_wakeup(t(10) + ms(200 * u64::from(my_rank)));
        assert_eq!(
            step2
                .broadcasts
                .iter()
                .filter(|m| m.kind() == "proposal")
                .count(),
            1,
            "proposes once its Δprop elapses"
        );
    }
}

#[test]
fn supports_valid_block_and_finishes_round_at_quorum() {
    let (keys, mut core) = setup();
    core.start(SimTime::ZERO);
    feed_beacon_round1(&mut core, &keys, t(10));
    let perm = round1_perm(&keys);
    let leader = perm.party_at_rank(0) as usize;
    if leader == 0 {
        return; // this seed's round-1 leader is the core itself; covered elsewhere
    }
    let block = block_from(&keys[leader], 1, keys[0].setup.genesis.hash(), 7);
    let proposal = artifacts::proposal(&keys[leader], block.clone(), None);
    let step = core.on_message(t(20), &ConsensusMessage::Proposal(proposal));
    // Leader's block (rank 0): Δntry(0) = 0 ⇒ immediate echo + share.
    let ks = kinds(&step.broadcasts);
    assert!(ks.contains(&"notarization-share"), "{ks:?}");
    assert!(ks.contains(&"proposal"), "echoes the block: {ks:?}");

    // Two more shares complete the quorum (ours + 2 = 3 = n − t):
    let r = BlockRef::of_hashed(&block);
    for (i, k) in keys.iter().enumerate().skip(1).take(2) {
        let share = artifacts::notarization_share(k, r);
        let step = core.on_message(
            t(25 + i as u64),
            &ConsensusMessage::NotarizationShare(share),
        );
        let ks = kinds(&step.broadcasts);
        if i == 2 {
            assert!(ks.contains(&"notarization"), "combined at quorum: {ks:?}");
            assert!(
                ks.contains(&"finalization-share"),
                "N ⊆ {{B}} ⇒ finalization share: {ks:?}"
            );
            assert_eq!(core.current_round(), Round::new(2), "advanced");
        } else {
            assert!(!ks.contains(&"notarization"), "not yet at quorum: {ks:?}");
        }
    }
}

#[test]
fn higher_rank_block_gated_until_its_ntry_and_blocked_by_better() {
    let (keys, mut core) = setup();
    core.start(SimTime::ZERO);
    // Keep the beacon-step broadcasts: when the core itself is the
    // round-1 leader its self-support share is emitted right here
    // (Δntry(0) = 0), not in any of the later steps.
    let step0 = feed_beacon_round1(&mut core, &keys, t(10));
    let perm = round1_perm(&keys);
    // Find the non-core parties of best and worst rank.
    let mut ranked: Vec<usize> = (1..N).collect();
    ranked.sort_by_key(|&p| perm.rank_of(p as u32));
    let best = ranked[0];
    let worst = ranked[2];
    let worst_rank = perm.rank_of(worst as u32);

    // The worst-rank block arrives first; before Δntry(worst) no share.
    let wb = block_from(&keys[worst], 1, keys[0].setup.genesis.hash(), 1);
    let wb_hash = wb.hash();
    let step1 = core.on_message(
        t(20),
        &ConsensusMessage::Proposal(artifacts::proposal(&keys[worst], wb, None)),
    );
    assert!(
        !kinds(&step1.broadcasts).contains(&"notarization-share"),
        "gated by Δntry({worst_rank})"
    );

    // A better block arrives, then the worst rank's gate passes: the
    // core must support the better candidate (its own proposal or the
    // best peer's) and never the worst one (guard (iv)).
    let bb = block_from(&keys[best], 1, keys[0].setup.genesis.hash(), 2);
    let bb_hash = bb.hash();
    let step2 = core.on_message(
        t(21),
        &ConsensusMessage::Proposal(artifacts::proposal(&keys[best], bb, None)),
    );
    let step3 = core.on_wakeup(t(10) + ms(200 * u64::from(worst_rank)) + ms(1));
    let shares: Vec<_> = step0
        .iter()
        .chain([&step1, &step2, &step3].iter().flat_map(|s| &s.broadcasts))
        .filter_map(|m| match m {
            ConsensusMessage::NotarizationShare(s) => Some(s.block_ref.hash),
            _ => None,
        })
        .collect();
    assert!(
        !shares.contains(&wb_hash),
        "worst-ranked block must never be supported"
    );
    if perm.rank_of(best as u32) < perm.rank_of(0) {
        assert!(
            shares.contains(&bb_hash),
            "best peer block supported: {shares:?}"
        );
    } else {
        // The core itself outranks the best peer: it supports its own
        // proposal instead.
        assert_eq!(shares.len(), 1, "exactly one support: {shares:?}");
    }
}

#[test]
fn equivocation_disqualifies_rank_and_withholds_finalization_share() {
    let (keys, mut core) = setup();
    core.start(SimTime::ZERO);
    feed_beacon_round1(&mut core, &keys, t(10));
    let perm = round1_perm(&keys);
    let leader = perm.party_at_rank(0) as usize;
    if leader == 0 {
        return;
    }
    let b1 = block_from(&keys[leader], 1, keys[0].setup.genesis.hash(), 1);
    let b2 = block_from(&keys[leader], 1, keys[0].setup.genesis.hash(), 2);
    let s1 = core.on_message(
        t(20),
        &ConsensusMessage::Proposal(artifacts::proposal(&keys[leader], b1.clone(), None)),
    );
    assert!(kinds(&s1.broadcasts).contains(&"notarization-share"));
    // The second, conflicting block: echoed (so others can catch the
    // equivocation) but NOT supported; rank 0 is disqualified.
    let s2 = core.on_message(
        t(21),
        &ConsensusMessage::Proposal(artifacts::proposal(&keys[leader], b2.clone(), None)),
    );
    let ks = kinds(&s2.broadcasts);
    assert!(ks.contains(&"proposal"), "echoed: {ks:?}");
    assert!(!ks.contains(&"notarization-share"), "not supported: {ks:?}");

    // Now b2 gets notarized by the others. Finishing the round with a
    // block ≠ the one we shared for ⇒ no finalization share (N ⊄ {B}).
    let s3 = core.on_message(t(30), &ConsensusMessage::Notarization(notarize(&keys, &b2)));
    let ks = kinds(&s3.broadcasts);
    assert!(ks.contains(&"notarization"), "{ks:?}");
    assert!(
        !ks.contains(&"finalization-share"),
        "must withhold finalization share after supporting a different block: {ks:?}"
    );
    assert_eq!(core.current_round(), Round::new(2));
}

#[test]
fn crash_behavior_emits_nothing() {
    let keys = generate_keys(SubnetConfig::new(N), 5);
    let mut crashed = ConsensusCore::new(
        generate_keys(SubnetConfig::new(N), 5).remove(0),
        StaticDelays::new(ms(100), SimDuration::ZERO),
        Behavior::Crash,
    );
    assert!(crashed.start(SimTime::ZERO).broadcasts.is_empty());
    let share = artifacts::beacon_share(&keys[1], Round::new(1), &keys[0].setup.genesis_beacon);
    let step = crashed.on_message(t(5), &ConsensusMessage::BeaconShare(share));
    assert!(step.broadcasts.is_empty());
    assert!(step.next_wakeup.is_none());
}

#[test]
fn commands_queue_and_commit_via_finalization() {
    let (keys, mut core) = setup();
    core.start(SimTime::ZERO);
    core.on_command(Command::new(b"cmd-a".to_vec()));
    core.on_command(Command::new(b"cmd-a".to_vec())); // duplicate ignored
    assert_eq!(core.pending_commands(), 1);

    feed_beacon_round1(&mut core, &keys, t(10));
    // Build a finalized round-1 block elsewhere and deliver it.
    let b = block_from(&keys[1], 1, keys[0].setup.genesis.hash(), 3);
    let r = BlockRef::of_hashed(&b);
    let fin_shares = keys
        .iter()
        .take(3)
        .map(|k| artifacts::finalization_share(k, r).share);
    let finalization = icc_types::messages::Finalization {
        block_ref: r,
        sig: keys[0]
            .setup
            .finality
            .combine(&r.sign_bytes(), fin_shares)
            .unwrap(),
    };
    core.on_message(
        t(20),
        &ConsensusMessage::Proposal(artifacts::proposal(&keys[1], b.clone(), None)),
    );
    core.on_message(t(21), &ConsensusMessage::Notarization(notarize(&keys, &b)));
    let step = core.on_message(t(22), &ConsensusMessage::Finalization(finalization));
    let commits: Vec<_> = step
        .events
        .iter()
        .filter_map(NodeEvent::as_committed)
        .collect();
    assert_eq!(commits.len(), 1);
    assert_eq!(commits[0].hash(), b.hash());
    assert_eq!(core.committed_round(), Round::new(1));
}

#[test]
fn stale_wakeups_are_harmless() {
    let (keys, mut core) = setup();
    core.start(SimTime::ZERO);
    feed_beacon_round1(&mut core, &keys, t(10));
    let before = core.current_round();
    for i in 0..5 {
        let step = core.on_wakeup(t(11 + i));
        // Repeated wakeups with no new information produce no duplicate
        // broadcasts (at most the one proposal if we are the leader).
        assert!(step.broadcasts.len() <= 1);
    }
    assert_eq!(core.current_round(), before);
}
