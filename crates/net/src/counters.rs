//! Real-atomic transport counters.
//!
//! Unlike the simulator's metering (which lives in single-threaded
//! engine state), the TCP transport's I/O happens on many threads, so
//! its counters are genuine `AtomicU64`s shared across writer, reader,
//! and driver threads. Snapshots feed the replica's end-of-run report
//! and `BENCH_net.json`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters for one [`TcpTransport`](crate::TcpTransport).
/// All increments use relaxed ordering — these are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Frames handed to the kernel (payloads fully written).
    pub frames_sent: AtomicU64,
    /// Payload bytes fully written (excluding frame headers).
    pub bytes_sent: AtomicU64,
    /// Frames received, CRC-checked, and decoded.
    pub frames_recv: AtomicU64,
    /// Payload bytes received in valid frames.
    pub bytes_recv: AtomicU64,
    /// Messages dropped because a peer's bounded send queue was full —
    /// the backpressure policy in action (drop-newest, never block the
    /// consensus driver).
    pub send_queue_drops: AtomicU64,
    /// Completed reconnections (a dial succeeding after the previous
    /// connection to that peer was lost — initial dials not counted).
    pub reconnects: AtomicU64,
    /// Frames whose payload failed message decoding (connection dropped).
    pub decode_errors: AtomicU64,
    /// Framing-layer rejections: bad magic, oversized length, CRC
    /// mismatch (connection dropped).
    pub frame_errors: AtomicU64,
}

/// A point-in-time copy of [`NetCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCountersSnapshot {
    /// See [`NetCounters::frames_sent`].
    pub frames_sent: u64,
    /// See [`NetCounters::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`NetCounters::frames_recv`].
    pub frames_recv: u64,
    /// See [`NetCounters::bytes_recv`].
    pub bytes_recv: u64,
    /// See [`NetCounters::send_queue_drops`].
    pub send_queue_drops: u64,
    /// See [`NetCounters::reconnects`].
    pub reconnects: u64,
    /// See [`NetCounters::decode_errors`].
    pub decode_errors: u64,
    /// See [`NetCounters::frame_errors`].
    pub frame_errors: u64,
}

impl NetCounters {
    /// Relaxed-increment helper.
    pub(crate) fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> NetCountersSnapshot {
        NetCountersSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            send_queue_drops: self.send_queue_drops.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
        }
    }
}

impl NetCountersSnapshot {
    /// Renders the snapshot as a JSON object fragment (stable key
    /// order), for embedding in replica reports.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"frames_sent\":{},\"bytes_sent\":{},\"frames_recv\":{},\"bytes_recv\":{},\
             \"send_queue_drops\":{},\"reconnects\":{},\"decode_errors\":{},\"frame_errors\":{}}}",
            self.frames_sent,
            self.bytes_sent,
            self.frames_recv,
            self.bytes_recv,
            self.send_queue_drops,
            self.reconnects,
            self.decode_errors,
            self.frame_errors,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_all_fields() {
        let c = NetCounters::default();
        NetCounters::bump(&c.frames_sent, 3);
        NetCounters::bump(&c.bytes_recv, 100);
        NetCounters::bump(&c.send_queue_drops, 1);
        let s = c.snapshot();
        assert_eq!(s.frames_sent, 3);
        assert_eq!(s.bytes_recv, 100);
        assert_eq!(s.send_queue_drops, 1);
        assert_eq!(s.frames_recv, 0);
        assert!(s.to_json().contains("\"send_queue_drops\":1"));
    }
}
