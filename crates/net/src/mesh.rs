//! The TCP mesh transport.
//!
//! Topology: every node runs one [`TcpListener`] (address from the
//! [`ClusterSpec`]) and **dials every other peer**. Connections are
//! directional — a dialed connection carries frames *outbound only*,
//! an accepted connection is *inbound only*. Directionality removes
//! the need for connection tie-breaking between concurrently-dialing
//! peers, and puts reconnection squarely on the dialer: if the link to
//! peer `p` drops, this node's writer thread for `p` redials with
//! capped exponential backoff until `p`'s listener answers.
//!
//! Threads per transport (for an `n`-node cluster):
//!
//! * `n − 1` **writer threads**, one per peer. Each owns a bounded
//!   queue of pre-framed [`Bytes`] and the dial/redial loop for its
//!   peer. The driver enqueues with a non-blocking `try_send`: when a
//!   peer stalls (dead, partitioned, or reading slowly) its queue
//!   fills and further messages to it are **dropped, newest first,
//!   with a counter** — consensus never blocks on a slow peer, which
//!   is exactly the best-effort contract [`Transport`] specifies and
//!   the protocol tolerates (artifacts are re-requested via gossip).
//! * 1 **acceptor thread** plus one short-lived **reader thread** per
//!   inbound connection: split frames with [`FrameBuffer`], decode the
//!   payload, push [`TransportEvent::Msg`] into the shared inbox. Any
//!   framing or decode error drops that connection (the peer's dialer
//!   re-establishes it at a clean frame boundary).
//!
//! The first frame on every dialed connection is a *hello* (protocol
//! version + dialer's node index), which is how the accepting side
//! attributes subsequent frames to a `NodeIndex` without trusting
//! source addresses.

use crate::config::ClusterSpec;
use crate::counters::{NetCounters, NetCountersSnapshot};
use crate::links::{LinkGauges, PeerLinkSnapshot};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use icc_sim::{RecvError, Transport, TransportEvent};
use icc_types::codec::{decode_from_slice, encode_to_vec, Decode, Encode};
use icc_types::frame::{encode_frame, FrameBuffer, DEFAULT_MAX_FRAME_LEN};
use icc_types::NodeIndex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire protocol version carried in the hello frame; bumped on any
/// frame- or codec-layer change.
pub const PROTO_VERSION: u32 = 1;

/// Tuning for a [`TcpTransport`].
#[derive(Debug, Clone, Copy)]
pub struct NetOptions {
    /// Per-peer writer queue depth; beyond it sends to that peer drop.
    /// Default 1024.
    pub queue_capacity: usize,
    /// Reject inbound frames declaring a payload larger than this.
    /// Default [`DEFAULT_MAX_FRAME_LEN`].
    pub max_frame_len: u32,
    /// First redial delay after a connection attempt fails. Default
    /// 50 ms.
    pub reconnect_base: Duration,
    /// Redial delay ceiling (the capped exponential backoff). Default
    /// 2 s.
    pub reconnect_cap: Duration,
    /// Poll granularity for blocking I/O waits (read timeouts, queue
    /// waits, backoff sleep slices) — bounds how long shutdown takes.
    /// Default 200 ms.
    pub io_poll: Duration,
    /// Per-attempt dial timeout. Default 500 ms.
    pub connect_timeout: Duration,
    /// Kernel write timeout per frame. A peer that cannot absorb a
    /// frame within this window counts as stalled: the connection is
    /// dropped (losing that frame — the drop-newest policy extended to
    /// the kernel buffer) and the dial loop re-establishes it. Also
    /// bounds how long shutdown can be stuck behind a blocked write.
    /// Default 2 s.
    pub write_timeout: Duration,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            queue_capacity: 1024,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_secs(2),
            io_poll: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// State shared across a transport's threads.
struct Shared {
    shutdown: AtomicBool,
    counters: Arc<NetCounters>,
    /// `alive[p]`: whether the outbound connection to peer `p` is
    /// currently established (own index always true).
    alive: Vec<AtomicBool>,
    /// Per-peer link gauges (queue depth, backoff, last-frame-seen),
    /// feeding the admin plane's `/status` endpoint.
    links: Arc<LinkGauges>,
    opts: NetOptions,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A handle for feeding a running [`TcpTransport`] from other threads:
/// external inputs (client commands) and the stop signal.
pub struct NetHandle<M, X> {
    inbox: Sender<TransportEvent<M, X>>,
}

impl<M, X> Clone for NetHandle<M, X> {
    fn clone(&self) -> Self {
        NetHandle {
            inbox: self.inbox.clone(),
        }
    }
}

impl<M, X> NetHandle<M, X> {
    /// Injects an external input. Returns `false` once the transport
    /// has stopped.
    pub fn inject(&self, input: X) -> bool {
        self.inbox.send(TransportEvent::External(input)).is_ok()
    }

    /// Asks the driver loop to stop after draining events queued so
    /// far.
    pub fn stop(&self) -> bool {
        self.inbox.send(TransportEvent::Stop).is_ok()
    }
}

/// The real-socket [`Transport`]: frames from [`icc_types::frame`] over
/// kernel TCP streams. See the module docs for the thread model.
pub struct TcpTransport<M, X> {
    me: NodeIndex,
    n: usize,
    inbox: Receiver<TransportEvent<M, X>>,
    inbox_tx: Sender<TransportEvent<M, X>>,
    /// Writer queues, indexed by peer; `None` at `me` (loopback goes
    /// straight to the inbox). Taken (set to `None`) on shutdown so the
    /// writer threads see their queues disconnect.
    writers: Vec<Option<Sender<(Bytes, usize)>>>,
    shared: Arc<Shared>,
    /// Writer + acceptor handles, joined on drop.
    threads: Vec<JoinHandle<()>>,
    /// Reader handles accumulate as connections arrive; joined on drop.
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// The actual listen address (differs from the spec for `:0` binds
    /// in tests); dialed once at shutdown to wake the acceptor.
    local_addr: SocketAddr,
}

impl<M, X> TcpTransport<M, X>
where
    M: Encode + Decode + Send + 'static,
    X: Send + 'static,
{
    /// Binds the listener at `spec.addr(me)` and starts the mesh: dial
    /// loops toward every peer, acceptor for inbound connections.
    /// Returns as soon as the local listener is up — peers connect (and
    /// reconnect) in the background.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure (address in use, privilege).
    pub fn bind(spec: &ClusterSpec, me: NodeIndex, opts: NetOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(spec.addr(me))?;
        Ok(Self::with_listener(listener, spec, me, opts))
    }

    /// Starts the mesh on an already-bound listener. This is the `:0`
    /// entry point for in-process tests: bind ephemeral listeners
    /// first, build the [`ClusterSpec`] from their actual addresses,
    /// then hand each listener over.
    pub fn with_listener(
        listener: TcpListener,
        spec: &ClusterSpec,
        me: NodeIndex,
        opts: NetOptions,
    ) -> Self {
        let n = spec.n();
        let local_addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            counters: Arc::new(NetCounters::default()),
            alive: (0..n).map(|_| AtomicBool::new(false)).collect(),
            links: Arc::new(LinkGauges::new(
                me.as_usize(),
                n,
                opts.queue_capacity as u64,
            )),
            opts,
        });
        shared.alive[me.as_usize()].store(true, Ordering::Relaxed);
        let (inbox_tx, inbox) = unbounded();
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();

        // Outbound: one writer (dial + drain) thread per remote peer.
        let mut writers: Vec<Option<Sender<(Bytes, usize)>>> = Vec::with_capacity(n);
        for p in 0..n {
            if p == me.as_usize() {
                writers.push(None);
                continue;
            }
            let (q_tx, q_rx) = bounded::<(Bytes, usize)>(opts.queue_capacity);
            writers.push(Some(q_tx));
            let addr = spec.addr(NodeIndex::new(p as u32));
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                writer_loop(addr, p, me, q_rx, &shared);
            }));
        }

        // Inbound: acceptor + per-connection readers.
        {
            let shared = Arc::clone(&shared);
            let inbox_tx = inbox_tx.clone();
            let readers = Arc::clone(&readers);
            threads.push(std::thread::spawn(move || {
                acceptor_loop::<M, X>(listener, n, inbox_tx, shared, readers);
            }));
        }

        TcpTransport {
            me,
            n,
            inbox,
            inbox_tx,
            writers,
            shared,
            threads,
            readers,
            local_addr,
        }
    }

    /// A handle for injecting externals / stop from other threads.
    pub fn handle(&self) -> NetHandle<M, X> {
        NetHandle {
            inbox: self.inbox_tx.clone(),
        }
    }

    /// Point-in-time I/O statistics.
    pub fn counters(&self) -> NetCountersSnapshot {
        self.shared.counters.snapshot()
    }

    /// A keepable handle on the live counters, for reading final
    /// statistics after the transport has been consumed by
    /// [`drive`](icc_sim::runtime::drive) (which drops it on return).
    pub fn counters_handle(&self) -> Arc<NetCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Point-in-time per-peer link state (self excluded).
    pub fn links(&self) -> Vec<PeerLinkSnapshot> {
        self.shared.links.snapshot()
    }

    /// A keepable handle on the live per-peer link gauges, for the
    /// admin plane to snapshot after the transport itself has been
    /// consumed by the driver.
    pub fn links_handle(&self) -> Arc<LinkGauges> {
        Arc::clone(&self.shared.links)
    }

    /// The address this transport's listener is bound to (useful with
    /// a port-0 bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the outbound connection to `peer` is currently up.
    pub fn peer_connected(&self, peer: NodeIndex) -> bool {
        self.shared.alive[peer.as_usize()].load(Ordering::Relaxed)
    }

    /// Enqueues an already-framed message for `peer`, applying the
    /// drop-newest backpressure policy.
    fn enqueue(&self, peer: usize, framed: Bytes, payload_len: usize) {
        let Some(q) = &self.writers[peer] else { return };
        match q.try_send((framed, payload_len)) {
            Ok(()) => {
                // Vendored crossbeam channels expose no len(): the depth
                // gauge is kept by hand — inc here, dec on dequeue.
                self.shared
                    .links
                    .link(peer)
                    .queue_depth
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) => {
                NetCounters::bump(&self.shared.counters.send_queue_drops, 1);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }
}

impl<M, X> Transport for TcpTransport<M, X>
where
    M: Encode + Decode + Clone + Send + 'static,
    X: Send + 'static,
{
    type Msg = M;
    type External = X;

    fn me(&self) -> NodeIndex {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: NodeIndex, msg: M) {
        if to == self.me {
            // Loopback skips the sockets (and the counters) entirely.
            let _ = self
                .inbox_tx
                .send(TransportEvent::Msg { from: self.me, msg });
            return;
        }
        let payload = encode_to_vec(&msg);
        let framed = Bytes::from(encode_frame(&payload));
        self.enqueue(to.as_usize(), framed, payload.len());
    }

    /// Encode-once fan-out: the frame is built a single time and every
    /// peer queue shares the same buffer (cloning [`Bytes`] is a
    /// refcount bump); self-delivery bypasses the sockets.
    fn broadcast(&mut self, msg: M) {
        let payload = encode_to_vec(&msg);
        let framed = Bytes::from(encode_frame(&payload));
        for p in 0..self.n {
            if p != self.me.as_usize() {
                self.enqueue(p, framed.clone(), payload.len());
            }
        }
        let _ = self
            .inbox_tx
            .send(TransportEvent::Msg { from: self.me, msg });
    }

    fn recv(&mut self, timeout: Duration) -> Result<TransportEvent<M, X>, RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(ev) => Ok(ev),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    /// Reports outbound-connection liveness — the failure-detection
    /// signal a TCP deployment gets for free (a dead peer's dial loop
    /// is in backoff, so `alive[p]` is false).
    fn snapshot_alive(&self, alive: &mut [bool]) -> bool {
        for (i, a) in self.shared.alive.iter().enumerate() {
            alive[i] = a.load(Ordering::Relaxed);
        }
        true
    }
}

impl<M, X> Drop for TcpTransport<M, X> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Disconnect every writer queue (their recv loops exit) …
        for w in self.writers.iter_mut() {
            *w = None;
        }
        // … and wake the acceptor out of its blocking accept with a
        // throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.readers.lock().expect("reader registry"));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// The hello frame a dialer sends first: protocol version + its index.
fn hello_frame(me: NodeIndex) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8);
    payload.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    payload.extend_from_slice(&me.get().to_le_bytes());
    encode_frame(&payload)
}

/// Dial-and-drain loop for one peer: connect (with capped exponential
/// backoff), say hello, then forward queued frames until the connection
/// or the queue dies; repeat until shutdown.
fn writer_loop(
    addr: SocketAddr,
    peer: usize,
    me: NodeIndex,
    queue: Receiver<(Bytes, usize)>,
    shared: &Shared,
) {
    let opts = shared.opts;
    let link = shared.links.link(peer);
    let mut backoff = opts.reconnect_base;
    let mut was_connected = false;
    'outer: while !shared.shutting_down() {
        let stream = match TcpStream::connect_timeout(&addr, opts.connect_timeout) {
            Ok(s) => s,
            Err(_) => {
                link.backoff_ms
                    .store(backoff.as_millis() as u64, Ordering::Relaxed);
                // Sleep the backoff in io_poll slices so shutdown is
                // never stuck behind a long wait.
                let until = Instant::now() + backoff;
                while Instant::now() < until {
                    if shared.shutting_down() {
                        break 'outer;
                    }
                    std::thread::sleep(opts.io_poll.min(Duration::from_millis(20)));
                }
                backoff = (backoff * 2).min(opts.reconnect_cap);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(opts.write_timeout));
        let mut stream = stream;
        if stream.write_all(&hello_frame(me)).is_err() {
            backoff = (backoff * 2).min(opts.reconnect_cap);
            continue;
        }
        if was_connected {
            NetCounters::bump(&shared.counters.reconnects, 1);
            link.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        was_connected = true;
        backoff = opts.reconnect_base;
        link.backoff_ms.store(0, Ordering::Relaxed);
        shared.alive[peer].store(true, Ordering::Relaxed);
        link.connected.store(true, Ordering::Relaxed);
        // Connected: drain the queue into the socket.
        loop {
            match queue.recv_timeout(opts.io_poll) {
                Ok((framed, payload_len)) => {
                    link.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    if stream.write_all(&framed).is_err() {
                        break; // connection lost; redial
                    }
                    NetCounters::bump(&shared.counters.frames_sent, 1);
                    NetCounters::bump(&shared.counters.bytes_sent, payload_len as u64);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if shared.shutting_down() {
                        shared.alive[peer].store(false, Ordering::Relaxed);
                        link.connected.store(false, Ordering::Relaxed);
                        break 'outer;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    shared.alive[peer].store(false, Ordering::Relaxed);
                    link.connected.store(false, Ordering::Relaxed);
                    break 'outer; // transport dropped
                }
            }
        }
        shared.alive[peer].store(false, Ordering::Relaxed);
        link.connected.store(false, Ordering::Relaxed);
    }
}

/// Accept loop: hand each inbound connection to its own reader thread.
fn acceptor_loop<M, X>(
    listener: TcpListener,
    n: usize,
    inbox: Sender<TransportEvent<M, X>>,
    shared: Arc<Shared>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) where
    M: Decode + Send + 'static,
    X: Send + 'static,
{
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down() {
                    break;
                }
                let inbox = inbox.clone();
                let shared = Arc::clone(&shared);
                let h = std::thread::spawn(move || reader_loop(stream, n, inbox, &shared));
                readers.lock().expect("reader registry").push(h);
            }
            Err(_) => {
                if shared.shutting_down() {
                    break;
                }
            }
        }
    }
}

/// Per-connection reader: hello first, then frames → decoded messages →
/// inbox. Any framing or decode error terminates the connection (the
/// peer redials and resynchronises).
fn reader_loop<M, X>(
    stream: TcpStream,
    n: usize,
    inbox: Sender<TransportEvent<M, X>>,
    shared: &Shared,
) where
    M: Decode,
{
    let opts = shared.opts;
    let _ = stream.set_read_timeout(Some(opts.io_poll));
    let mut stream = stream;
    let mut fb = FrameBuffer::with_max_len(opts.max_frame_len);
    let mut from: Option<NodeIndex> = None;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if shared.shutting_down() {
            return;
        }
        let got = match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(k) => k,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        fb.extend(&chunk[..got]);
        loop {
            let payload = match fb.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break, // need more bytes
                Err(_) => {
                    NetCounters::bump(&shared.counters.frame_errors, 1);
                    return; // stream offset untrusted: drop connection
                }
            };
            match from {
                None => {
                    // First frame must be the hello.
                    if payload.len() != 8 {
                        NetCounters::bump(&shared.counters.frame_errors, 1);
                        return;
                    }
                    let version = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
                    let index = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
                    if version != PROTO_VERSION || index as usize >= n {
                        NetCounters::bump(&shared.counters.frame_errors, 1);
                        return;
                    }
                    from = Some(NodeIndex::new(index));
                }
                Some(from) => match decode_from_slice::<M>(&payload) {
                    Ok(msg) => {
                        NetCounters::bump(&shared.counters.frames_recv, 1);
                        NetCounters::bump(&shared.counters.bytes_recv, payload.len() as u64);
                        shared.links.frame_seen(from.as_usize());
                        if inbox.send(TransportEvent::Msg { from, msg }).is_err() {
                            return; // transport dropped
                        }
                    }
                    Err(_) => {
                        NetCounters::bump(&shared.counters.decode_errors, 1);
                        return;
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an in-process mesh of `n` transports over ephemeral
    /// ports: bind `:0` listeners first, derive the spec from the
    /// actual addresses, then start each transport on its listener.
    fn mesh(n: usize, opts: NetOptions) -> Vec<TcpTransport<Vec<u8>, ()>> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("ephemeral bind"))
            .collect();
        let spec = ClusterSpec::from_addrs(
            listeners
                .iter()
                .map(|l| l.local_addr().expect("bound"))
                .collect(),
        )
        .expect("non-empty");
        listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| TcpTransport::with_listener(l, &spec, NodeIndex::new(i as u32), opts))
            .collect()
    }

    /// Receive messages until `want` of them arrive (or 5 s elapse).
    fn collect_msgs(t: &mut TcpTransport<Vec<u8>, ()>, want: usize) -> Vec<(NodeIndex, Vec<u8>)> {
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.len() < want && Instant::now() < deadline {
            if let Ok(TransportEvent::Msg { from, msg }) = t.recv(Duration::from_millis(100)) {
                out.push((from, msg));
            }
        }
        out
    }

    #[test]
    fn two_node_frame_roundtrip_both_directions() {
        let mut ts = mesh(2, NetOptions::default());
        let mut t1 = ts.pop().unwrap();
        let mut t0 = ts.pop().unwrap();
        t0.send(NodeIndex::new(1), b"zero to one".to_vec());
        t1.send(NodeIndex::new(0), b"one to zero".to_vec());
        let got1 = collect_msgs(&mut t1, 1);
        let got0 = collect_msgs(&mut t0, 1);
        assert_eq!(got1, vec![(NodeIndex::new(0), b"zero to one".to_vec())]);
        assert_eq!(got0, vec![(NodeIndex::new(1), b"one to zero".to_vec())]);
        let c = t0.counters();
        assert_eq!(c.frames_sent, 1);
        // Codec-encoded payload: 8-byte length prefix + 11 bytes.
        assert_eq!(c.bytes_sent, 19);
        assert_eq!(c.frames_recv, 1);
        assert_eq!(c.frame_errors, 0);
    }

    #[test]
    fn broadcast_reaches_all_including_self() {
        let mut ts = mesh(3, NetOptions::default());
        ts[1].broadcast(b"to everyone".to_vec());
        for (i, t) in ts.iter_mut().enumerate() {
            let got = collect_msgs(t, 1);
            assert_eq!(
                got,
                vec![(NodeIndex::new(1), b"to everyone".to_vec())],
                "node {i} missed the broadcast"
            );
        }
    }

    #[test]
    fn messages_survive_in_order_per_peer() {
        let mut ts = mesh(2, NetOptions::default());
        let mut t1 = ts.pop().unwrap();
        let mut t0 = ts.pop().unwrap();
        for i in 0..200u32 {
            t0.send(NodeIndex::new(1), i.to_le_bytes().to_vec());
        }
        let got = collect_msgs(&mut t1, 200);
        assert_eq!(got.len(), 200);
        for (i, (from, msg)) in got.iter().enumerate() {
            assert_eq!(*from, NodeIndex::new(0));
            assert_eq!(msg, &(i as u32).to_le_bytes().to_vec());
        }
    }

    #[test]
    fn peer_restart_triggers_reconnect_with_backoff() {
        // Fix node 1's port up front so its replacement can rebind it.
        let opts = NetOptions {
            reconnect_base: Duration::from_millis(10),
            reconnect_cap: Duration::from_millis(100),
            io_poll: Duration::from_millis(20),
            ..NetOptions::default()
        };
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let spec =
            ClusterSpec::from_addrs(vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()])
                .unwrap();
        let mut t0: TcpTransport<Vec<u8>, ()> =
            TcpTransport::with_listener(l0, &spec, NodeIndex::new(0), opts);
        let mut t1: TcpTransport<Vec<u8>, ()> =
            TcpTransport::with_listener(l1, &spec, NodeIndex::new(1), opts);

        t0.send(NodeIndex::new(1), b"before".to_vec());
        assert_eq!(collect_msgs(&mut t1, 1).len(), 1);

        // Kill node 1. Node 0's writer loses the connection and enters
        // its redial backoff against the (momentarily dead) address.
        let addr1 = spec.addr(NodeIndex::new(1));
        drop(t1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while t0.peer_connected(NodeIndex::new(1)) && Instant::now() < deadline {
            // The writer only notices on its next write: poke it.
            t0.send(NodeIndex::new(1), b"probe".to_vec());
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            !t0.peer_connected(NodeIndex::new(1)),
            "writer never noticed the dead peer"
        );

        // Restart node 1 on the same address; node 0 must redial it.
        let l1b = TcpListener::bind(addr1).expect("rebind restarted peer");
        let mut t1b: TcpTransport<Vec<u8>, ()> =
            TcpTransport::with_listener(l1b, &spec, NodeIndex::new(1), opts);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut delivered = Vec::new();
        while delivered.is_empty() && Instant::now() < deadline {
            t0.send(NodeIndex::new(1), b"after restart".to_vec());
            delivered = collect_msgs_for(&mut t1b, 1, Duration::from_millis(100));
        }
        assert_eq!(
            delivered.first().map(|(_, m)| m.as_slice()),
            Some(&b"after restart"[..])
        );
        assert!(
            t0.counters().reconnects >= 1,
            "reconnect not counted: {:?}",
            t0.counters()
        );
    }

    fn collect_msgs_for(
        t: &mut TcpTransport<Vec<u8>, ()>,
        want: usize,
        total: Duration,
    ) -> Vec<(NodeIndex, Vec<u8>)> {
        let mut out = Vec::new();
        let deadline = Instant::now() + total;
        while out.len() < want && Instant::now() < deadline {
            if let Ok(TransportEvent::Msg { from, msg }) = t.recv(Duration::from_millis(50)) {
                out.push((from, msg));
            }
        }
        out
    }

    #[test]
    fn backpressure_drops_newest_instead_of_blocking() {
        // A "peer" that accepts node 0's dial and then never reads: the
        // kernel buffers fill, node 0's writer blocks in write_all, the
        // 4-slot queue fills, and further sends must drop (never block
        // the caller).
        let opts = NetOptions {
            queue_capacity: 4,
            write_timeout: Duration::from_millis(300),
            ..NetOptions::default()
        };
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let stall = TcpListener::bind("127.0.0.1:0").unwrap();
        let spec =
            ClusterSpec::from_addrs(vec![l0.local_addr().unwrap(), stall.local_addr().unwrap()])
                .unwrap();
        // Keep the accepted socket alive (but unread) for the test's
        // duration.
        let stalled_conn = std::thread::spawn(move || stall.accept().map(|(s, _)| s));
        let mut t0: TcpTransport<Vec<u8>, ()> =
            TcpTransport::with_listener(l0, &spec, NodeIndex::new(0), opts);

        let big = vec![0xABu8; 256 * 1024];
        let started = Instant::now();
        for _ in 0..64 {
            t0.send(NodeIndex::new(1), big.clone());
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "send blocked the driver for {elapsed:?}"
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while t0.counters().send_queue_drops == 0 && Instant::now() < deadline {
            t0.send(NodeIndex::new(1), big.clone());
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            t0.counters().send_queue_drops > 0,
            "stalled reader never produced queue drops: {:?}",
            t0.counters()
        );
        drop(t0);
        drop(stalled_conn.join());
    }

    #[test]
    fn link_gauges_track_connection_and_frames() {
        let mut ts = mesh(2, NetOptions::default());
        let mut t1 = ts.pop().unwrap();
        let mut t0 = ts.pop().unwrap();
        t0.send(NodeIndex::new(1), b"ping".to_vec());
        assert_eq!(collect_msgs(&mut t1, 1).len(), 1);

        // t0's outbound link to 1 is up and its queue has drained.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let links = t0.links();
            assert_eq!(links.len(), 1);
            let l = links[0];
            assert_eq!(l.peer, 1);
            assert_eq!(l.queue_capacity, 1024);
            if l.connected && l.queue_depth == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "link never settled: {l:?}");
            std::thread::sleep(Duration::from_millis(10));
        }

        // t1 has heard an inbound frame from 0 recently.
        t1.send(NodeIndex::new(0), b"pong".to_vec());
        assert_eq!(collect_msgs(&mut t0, 1).len(), 1);
        let l = t0.links()[0];
        assert!(
            l.last_frame_age_us < 5_000_000,
            "no recent frame from peer 1: {l:?}"
        );
        assert_eq!(l.backoff_ms, 0);
    }

    #[test]
    fn corrupt_and_oversized_frames_drop_connection_not_transport() {
        let mut ts = mesh(2, NetOptions::default());
        let mut t1 = ts.pop().unwrap();
        let t0 = ts.pop().unwrap();
        let addr1 = t1.local_addr;

        // A rogue client speaks a valid hello, then declares an absurd
        // frame length. The reader must drop the connection (counting a
        // frame error), allocating nothing.
        let mut rogue = TcpStream::connect(addr1).unwrap();
        rogue.write_all(&hello_frame(NodeIndex::new(0))).unwrap();
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&icc_types::frame::MAGIC.to_le_bytes());
        bogus.extend_from_slice(&(u32::MAX).to_le_bytes()); // 4 GiB claim
        bogus.extend_from_slice(&0u32.to_le_bytes());
        rogue.write_all(&bogus).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while t1.counters().frame_errors == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(t1.counters().frame_errors, 1);

        // …and the transport still serves honest peers. Drive t0 in a
        // helper thread so its own mesh stays live.
        let mut t0 = t0;
        t0.send(NodeIndex::new(1), b"still alive".to_vec());
        let got = collect_msgs(&mut t1, 1);
        assert_eq!(got, vec![(NodeIndex::new(0), b"still alive".to_vec())]);
    }
}
