//! Real-socket transport for the ICC reproduction: run the same
//! consensus nodes as independent OS processes over kernel TCP.
//!
//! The protocol cores are sans-IO ([`icc_sim::Node`]) and the wall-clock
//! driver is transport-agnostic ([`icc_sim::runtime::drive`] over the
//! [`Transport`](icc_sim::Transport) trait); this crate supplies the
//! third backend after the discrete-event engine and the in-process
//! channel mesh:
//!
//! * [`config`] — the static peer file (`<index> <host:port>` lines) a
//!   replica process joins a cluster from;
//! * [`mesh`] — [`TcpTransport`]: a dial-everyone TCP mesh with
//!   per-peer writer threads, bounded-queue **drop-newest
//!   backpressure**, and capped-exponential-backoff reconnect, carrying
//!   [`icc_types::frame`] CRC'd frames of [`icc_types::codec`]
//!   payloads;
//! * [`counters`] — real-atomic I/O statistics ([`NetCounters`]) for
//!   the replica's end-of-run report;
//! * [`links`] — per-peer link gauges ([`LinkGauges`]: connection
//!   state, send-queue depth, reconnect backoff, last-frame-seen age)
//!   feeding the admin plane's `/status` endpoint.
//!
//! Std-only by design: the workspace builds offline, so there is no
//! tokio — blocking sockets and OS threads, which for a handful of
//! peers per process is also the simpler model to reason about.
//!
//! # Example (in-process pair over real sockets)
//!
//! ```
//! use icc_net::{ClusterSpec, NetOptions, TcpTransport};
//! use icc_sim::{Transport, TransportEvent};
//! use icc_types::NodeIndex;
//! use std::net::TcpListener;
//! use std::time::Duration;
//!
//! let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
//! let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
//! let spec = ClusterSpec::from_addrs(vec![
//!     l0.local_addr().unwrap(),
//!     l1.local_addr().unwrap(),
//! ])
//! .unwrap();
//! let mut a: TcpTransport<Vec<u8>, ()> =
//!     TcpTransport::with_listener(l0, &spec, NodeIndex::new(0), NetOptions::default());
//! let mut b: TcpTransport<Vec<u8>, ()> =
//!     TcpTransport::with_listener(l1, &spec, NodeIndex::new(1), NetOptions::default());
//! a.send(NodeIndex::new(1), b"over TCP".to_vec());
//! loop {
//!     if let Ok(TransportEvent::Msg { from, msg }) = b.recv(Duration::from_millis(100)) {
//!         assert_eq!((from, msg), (NodeIndex::new(0), b"over TCP".to_vec()));
//!         break;
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod links;
pub mod mesh;

pub use config::{ClusterSpec, SpecError};
pub use counters::{NetCounters, NetCountersSnapshot};
pub use links::{LinkGauges, PeerLinkSnapshot};
pub use mesh::{NetHandle, NetOptions, TcpTransport, PROTO_VERSION};
