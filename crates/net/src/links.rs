//! Per-peer link gauges for the TCP mesh.
//!
//! [`NetCounters`](crate::NetCounters) aggregates over the whole
//! transport; operators debugging a wedged cluster need the *per-link*
//! picture — which peer's queue is backed up, who is mid-backoff, who
//! went quiet. These gauges are written by the writer/reader threads
//! with relaxed atomics (statistics, not synchronization) and read by
//! the admin plane's `/status` endpoint without taking any lock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Gauges for one directed link (us → peer).
#[derive(Debug)]
pub(crate) struct LinkGauge {
    /// Whether the outbound connection is currently established.
    pub connected: AtomicBool,
    /// Frames sitting in the bounded send queue right now.
    pub queue_depth: AtomicU64,
    /// Current reconnect backoff in milliseconds (0 while connected).
    pub backoff_ms: AtomicU64,
    /// Transport-relative timestamp (µs since gauge creation) of the
    /// last valid inbound frame from this peer; `u64::MAX` = never.
    pub last_frame_us: AtomicU64,
    /// Completed reconnections to this peer.
    pub reconnects: AtomicU64,
}

impl LinkGauge {
    fn new() -> Self {
        Self {
            connected: AtomicBool::new(false),
            queue_depth: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
            last_frame_us: AtomicU64::new(u64::MAX),
            reconnects: AtomicU64::new(0),
        }
    }
}

/// All per-peer link gauges for one transport, plus the clock they are
/// stamped against.
#[derive(Debug)]
pub struct LinkGauges {
    me: usize,
    queue_capacity: u64,
    started: Instant,
    links: Vec<LinkGauge>,
}

/// A point-in-time copy of one peer's link gauges, shaped for the
/// `/status` endpoint (see `icc_telemetry::PeerLinkStatus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerLinkSnapshot {
    /// Peer replica index.
    pub peer: usize,
    /// Whether the outbound connection is currently established.
    pub connected: bool,
    /// Frames sitting in the bounded send queue.
    pub queue_depth: u64,
    /// Capacity of that queue (same for every peer).
    pub queue_capacity: u64,
    /// Current reconnect backoff in milliseconds (0 while connected).
    pub backoff_ms: u64,
    /// Microseconds since the last valid inbound frame from this peer;
    /// `u64::MAX` if none was ever seen.
    pub last_frame_age_us: u64,
    /// Completed reconnections to this peer.
    pub reconnects: u64,
}

impl LinkGauges {
    /// Creates gauges for an `n`-replica mesh as seen from replica
    /// `me`. The self-link exists for index alignment but is skipped by
    /// [`Self::snapshot`].
    pub fn new(me: usize, n: usize, queue_capacity: u64) -> Self {
        Self {
            me,
            queue_capacity,
            started: Instant::now(),
            links: (0..n).map(|_| LinkGauge::new()).collect(),
        }
    }

    /// Microseconds elapsed since gauge creation — the clock
    /// `last_frame_us` stamps are measured against.
    pub fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    pub(crate) fn link(&self, peer: usize) -> &LinkGauge {
        &self.links[peer]
    }

    /// Stamps receipt of a valid frame from `peer`. Out-of-range peers
    /// (a malformed hello already drops the connection, but belt and
    /// braces) are ignored.
    pub(crate) fn frame_seen(&self, peer: usize) {
        if let Some(link) = self.links.get(peer) {
            link.last_frame_us.store(self.now_us(), Ordering::Relaxed);
        }
    }

    /// Copies every peer link (self excluded), computing frame age
    /// against the gauge clock.
    pub fn snapshot(&self) -> Vec<PeerLinkSnapshot> {
        let now = self.now_us();
        self.links
            .iter()
            .enumerate()
            .filter(|(peer, _)| *peer != self.me)
            .map(|(peer, link)| {
                let last = link.last_frame_us.load(Ordering::Relaxed);
                PeerLinkSnapshot {
                    peer,
                    connected: link.connected.load(Ordering::Relaxed),
                    queue_depth: link.queue_depth.load(Ordering::Relaxed),
                    queue_capacity: self.queue_capacity,
                    backoff_ms: link.backoff_ms.load(Ordering::Relaxed),
                    last_frame_age_us: if last == u64::MAX {
                        u64::MAX
                    } else {
                        now.saturating_sub(last)
                    },
                    reconnects: link.reconnects.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_excludes_self_and_computes_age() {
        let g = LinkGauges::new(1, 3, 1024);
        g.link(0).connected.store(true, Ordering::Relaxed);
        g.link(0).queue_depth.store(7, Ordering::Relaxed);
        g.link(2).backoff_ms.store(400, Ordering::Relaxed);
        g.frame_seen(0);
        let snap = g.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].peer, 0);
        assert_eq!(snap[1].peer, 2);
        assert!(snap[0].connected);
        assert_eq!(snap[0].queue_depth, 7);
        assert_eq!(snap[0].queue_capacity, 1024);
        assert!(snap[0].last_frame_age_us < 1_000_000, "fresh frame");
        assert_eq!(snap[1].backoff_ms, 400);
        assert_eq!(snap[1].last_frame_age_us, u64::MAX, "never heard from 2");
    }

    #[test]
    fn frame_seen_ignores_out_of_range_peer() {
        let g = LinkGauges::new(0, 2, 16);
        g.frame_seen(9);
        assert_eq!(g.snapshot().len(), 1);
    }
}
