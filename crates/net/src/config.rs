//! The static peer configuration a replica process joins a cluster
//! from: one line per node, `<index> <host:port>`.
//!
//! ```text
//! # four-node localhost cluster
//! 0 127.0.0.1:4600
//! 1 127.0.0.1:4601
//! 2 127.0.0.1:4602
//! 3 127.0.0.1:4603
//! ```
//!
//! Indices must be the contiguous range `0..n` (in any line order) —
//! they are the same `NodeIndex` values the deterministic key dealer
//! and the consensus core use, so the file is the single source of
//! truth binding key material to socket addresses.

use icc_types::NodeIndex;
use std::error::Error;
use std::fmt;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::Path;

/// A parsed cluster membership file: the socket address of every node,
/// indexed by `NodeIndex`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    addrs: Vec<SocketAddr>,
}

/// Why a membership file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line was not `<index> <host:port>`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        why: String,
    },
    /// The same index appeared on two lines.
    DuplicateIndex {
        /// The repeated index.
        index: u32,
    },
    /// The indices did not form the contiguous range `0..n`.
    NonContiguous {
        /// Number of entries found.
        n: usize,
        /// The first missing index.
        missing: u32,
    },
    /// The file had no entries.
    Empty,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Malformed { line, why } => {
                write!(f, "cluster spec line {line}: {why}")
            }
            SpecError::DuplicateIndex { index } => {
                write!(f, "cluster spec: node index {index} appears twice")
            }
            SpecError::NonContiguous { n, missing } => {
                write!(
                    f,
                    "cluster spec: {n} entries but index {missing} is missing \
                     (indices must be contiguous from 0)"
                )
            }
            SpecError::Empty => f.write_str("cluster spec: no entries"),
        }
    }
}

impl Error for SpecError {}

impl ClusterSpec {
    /// Builds a spec directly from addresses; `addrs[i]` is node `i`.
    pub fn from_addrs(addrs: Vec<SocketAddr>) -> Result<ClusterSpec, SpecError> {
        if addrs.is_empty() {
            return Err(SpecError::Empty);
        }
        Ok(ClusterSpec { addrs })
    }

    /// Parses the `<index> <host:port>` line format ( `#` comments and
    /// blank lines ignored).
    ///
    /// # Errors
    ///
    /// Any [`SpecError`] on malformed, duplicate, gapped, or empty
    /// input.
    pub fn parse(text: &str) -> Result<ClusterSpec, SpecError> {
        let mut entries: Vec<(u32, SocketAddr)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(idx), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(SpecError::Malformed {
                    line: lineno + 1,
                    why: format!("expected `<index> <host:port>`, got {line:?}"),
                });
            };
            let index: u32 = idx.parse().map_err(|_| SpecError::Malformed {
                line: lineno + 1,
                why: format!("bad node index {idx:?}"),
            })?;
            // `to_socket_addrs` resolves hostnames too (e.g. `localhost`),
            // not just literal IPs.
            let addr = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .ok_or_else(|| SpecError::Malformed {
                    line: lineno + 1,
                    why: format!("bad socket address {addr:?}"),
                })?;
            if entries.iter().any(|(i, _)| *i == index) {
                return Err(SpecError::DuplicateIndex { index });
            }
            entries.push((index, addr));
        }
        if entries.is_empty() {
            return Err(SpecError::Empty);
        }
        entries.sort_by_key(|(i, _)| *i);
        for (want, (got, _)) in entries.iter().enumerate() {
            if *got != want as u32 {
                return Err(SpecError::NonContiguous {
                    n: entries.len(),
                    missing: want as u32,
                });
            }
        }
        Ok(ClusterSpec {
            addrs: entries.into_iter().map(|(_, a)| a).collect(),
        })
    }

    /// Reads and parses a membership file.
    ///
    /// # Errors
    ///
    /// I/O failure or any [`SpecError`], both boxed.
    pub fn load(path: &Path) -> Result<ClusterSpec, Box<dyn Error>> {
        let text = std::fs::read_to_string(path)?;
        Ok(ClusterSpec::parse(&text)?)
    }

    /// Renders the spec back into the line format `parse` accepts.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, a) in self.addrs.iter().enumerate() {
            writeln!(out, "{i} {a}").expect("string write");
        }
        out
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.addrs.len()
    }

    /// The socket address of node `i`.
    pub fn addr(&self, i: NodeIndex) -> SocketAddr {
        self.addrs[i.as_usize()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_with_comments_and_order() {
        let text =
            "# demo cluster\n2 127.0.0.1:4602\n0 127.0.0.1:4600 # seed\n\n1 127.0.0.1:4601\n";
        let spec = ClusterSpec::parse(text).unwrap();
        assert_eq!(spec.n(), 3);
        assert_eq!(spec.addr(NodeIndex::new(1)).port(), 4601);
        let again = ClusterSpec::parse(&spec.render()).unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn rejects_duplicates_gaps_and_garbage() {
        assert_eq!(
            ClusterSpec::parse("0 127.0.0.1:1\n0 127.0.0.1:2\n"),
            Err(SpecError::DuplicateIndex { index: 0 })
        );
        assert_eq!(
            ClusterSpec::parse("0 127.0.0.1:1\n2 127.0.0.1:2\n"),
            Err(SpecError::NonContiguous { n: 2, missing: 1 })
        );
        assert_eq!(ClusterSpec::parse("# nothing\n"), Err(SpecError::Empty));
        assert!(matches!(
            ClusterSpec::parse("0 not-an-address\n"),
            Err(SpecError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            ClusterSpec::parse("zero 127.0.0.1:1\n"),
            Err(SpecError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            ClusterSpec::parse("0 127.0.0.1:1 extra\n"),
            Err(SpecError::Malformed { line: 1, .. })
        ));
    }
}
