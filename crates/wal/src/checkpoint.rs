//! Atomic checkpoint files.
//!
//! A checkpoint replaces the log prefix it covers, so it must never be
//! observable half-written: recovery finding a hybrid of old and new
//! checkpoint would violate the prefix invariant in the worst possible
//! place (the oldest state). The classic POSIX recipe provides the
//! atomicity: write the full payload to `checkpoint.tmp`, `fsync` it,
//! `rename` over `checkpoint.bin` (atomic within a filesystem), then
//! `fsync` the *directory* so the rename itself survives power loss. A
//! crash at any step leaves either the previous checkpoint or the new
//! one — the stale `.tmp`, if any, is swept on the next load.
//!
//! The payload is wrapped in one [`icc_types::frame`] frame, so a
//! checkpoint damaged on the media (rather than by a crash) is caught
//! by the same CRC the WAL and the wire use, and treated as absent —
//! the WAL prefix still recovers, just from further back.

use crate::StorageCounters;
use icc_types::frame::{self, FrameBuffer};
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

/// File name of the current checkpoint inside a data directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// Atomically replaces the checkpoint at `dir` with `payload`.
pub fn save_checkpoint(
    dir: &Path,
    payload: &[u8],
    counters: &mut StorageCounters,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(CHECKPOINT_TMP);
    let mut file = File::create(&tmp)?;
    file.write_all(&frame::encode_frame(payload))?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    sync_dir(dir)?;
    counters.checkpoints_written += 1;
    counters.checkpoint_bytes += payload.len() as u64;
    Ok(())
}

/// Loads the checkpoint payload at `dir`, if a valid one exists.
///
/// Missing file → `Ok(None)`. A file that fails the frame check (torn,
/// bit-flipped, truncated, trailing garbage) is **counted and treated
/// as absent**, never an error: losing a checkpoint degrades recovery
/// to an older prefix, it must not brick the replica. A leftover
/// `checkpoint.tmp` from a crashed save is deleted.
pub fn load_checkpoint(
    dir: &Path,
    max_len: u32,
    counters: &mut StorageCounters,
) -> io::Result<Option<Vec<u8>>> {
    let tmp = dir.join(CHECKPOINT_TMP);
    if tmp.exists() {
        fs::remove_file(&tmp)?;
    }
    let path = dir.join(CHECKPOINT_FILE);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;

    let mut fb = FrameBuffer::with_max_len(max_len);
    fb.extend(&bytes);
    match fb.next_frame() {
        Ok(Some(payload)) if fb.pending() == 0 => Ok(Some(payload)),
        _ => {
            counters.checkpoint_corruptions += 1;
            counters.discarded_bytes += bytes.len() as u64;
            Ok(None)
        }
    }
}

/// `fsync` on the directory so a just-renamed entry is durable. On
/// non-Unix platforms directory handles can't be synced; the rename is
/// still atomic, only its durability window is weaker.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icc-wal-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_and_replace() {
        let dir = tmp_dir("roundtrip");
        let mut c = StorageCounters::default();
        assert_eq!(load_checkpoint(&dir, 1 << 20, &mut c).unwrap(), None);
        save_checkpoint(&dir, b"state v1", &mut c).unwrap();
        assert_eq!(
            load_checkpoint(&dir, 1 << 20, &mut c).unwrap().as_deref(),
            Some(&b"state v1"[..])
        );
        save_checkpoint(&dir, b"state v2 (bigger)", &mut c).unwrap();
        assert_eq!(
            load_checkpoint(&dir, 1 << 20, &mut c).unwrap().as_deref(),
            Some(&b"state v2 (bigger)"[..])
        );
        assert_eq!(c.checkpoints_written, 2);
        assert_eq!(c.checkpoint_corruptions, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_treated_as_absent() {
        let dir = tmp_dir("corrupt");
        let mut c = StorageCounters::default();
        save_checkpoint(&dir, b"good state", &mut c).unwrap();
        let path = dir.join(CHECKPOINT_FILE);

        // Bit flip.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(load_checkpoint(&dir, 1 << 20, &mut c).unwrap(), None);
        assert_eq!(c.checkpoint_corruptions, 1);

        // Truncation (torn write without the atomic rename).
        save_checkpoint(&dir, b"good state", &mut c).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(load_checkpoint(&dir, 1 << 20, &mut c).unwrap(), None);

        // Trailing garbage after a valid frame.
        save_checkpoint(&dir, b"good state", &mut c).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk");
        fs::write(&path, &bytes).unwrap();
        assert_eq!(load_checkpoint(&dir, 1 << 20, &mut c).unwrap(), None);
        assert_eq!(c.checkpoint_corruptions, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_swept_and_ignored() {
        let dir = tmp_dir("staletmp");
        let mut c = StorageCounters::default();
        save_checkpoint(&dir, b"committed", &mut c).unwrap();
        // A crash mid-save leaves a tmp file; it must not shadow the
        // committed checkpoint.
        fs::write(dir.join(CHECKPOINT_TMP), b"half written ...").unwrap();
        assert_eq!(
            load_checkpoint(&dir, 1 << 20, &mut c).unwrap().as_deref(),
            Some(&b"committed"[..])
        );
        assert!(!dir.join(CHECKPOINT_TMP).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
