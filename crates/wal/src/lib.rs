//! Crash-consistent durable storage for a consensus replica.
//!
//! The paper's fault model (§1) has replicas that "simply crash" and
//! later come back. Coming back *cheaply* — without re-verifying a
//! single signature and without a full network re-sync — requires that
//! the replica's certified state survive the crash on disk, and that
//! the on-disk form tolerate exactly the damage a crash can inflict: a
//! torn final write, a page the kernel never flushed, a segment a dying
//! disk corrupted. This crate is that substrate, std-only and free of
//! any external storage engine:
//!
//! * [`Wal`] — an append-only **segmented write-ahead log**. Every
//!   record is framed with the same CRC'd length-prefix format TCP
//!   streams use ([`icc_types::frame`]): magic, length (guarded before
//!   any allocation), CRC-32, payload. Appends go to an active segment
//!   that rotates at a size threshold; sealed segments are deleted
//!   wholesale once a checkpoint covers them (compaction at checkpoint
//!   boundaries). Durability is governed by a configurable
//!   [`FsyncPolicy`]: per-commit, group commit with a batching window,
//!   or periodic.
//! * [`save_checkpoint`] / [`load_checkpoint`] — **atomic checkpoint
//!   files**: write-temp, fsync, rename, fsync-dir. A crash at any
//!   point leaves either the old checkpoint or the new one, never a
//!   hybrid.
//! * [`fault`] — a **disk-fault injection harness**: a write layer that
//!   models the page cache (bytes reach the file only at fsync) so
//!   crashes produce partial fsyncs, torn tails, and bit-flipped
//!   records on demand, plus post-hoc injectors that corrupt segment
//!   and checkpoint files directly.
//!
//! The recovery invariant, pinned by the fault-matrix tests: whatever a
//! crash or injected fault did to the tail of the log, [`Wal::open`]
//! recovers exactly a **prefix** of the appended records — it truncates
//! the damaged tail, discards any segments past the damage, never
//! panics, and accounts for every discarded byte in
//! [`StorageCounters`].

mod checkpoint;
pub mod fault;
mod wal;

pub use checkpoint::{load_checkpoint, save_checkpoint, CHECKPOINT_FILE};
pub use wal::{
    FsyncPolicy, OsFs, RecoveredRecord, SegmentFile, SegmentFs, Wal, WalOptions, SEGMENT_SUFFIX,
};

/// Telemetry account of everything the storage layer did — and, after a
/// recovery, everything it had to throw away. The recovery-side fields
/// are how the crash-consistency tests (and the `net_cluster` REPORT
/// line) check that injected damage was detected, quarantined, and
/// rolled back to the last valid prefix rather than silently read.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageCounters {
    /// Records appended to the log.
    pub records_appended: u64,
    /// Bytes appended (frame headers included).
    pub bytes_appended: u64,
    /// `fsync` calls actually issued (group/periodic policies issue
    /// fewer than one per record — that is their point).
    pub fsyncs: u64,
    /// Wall-clock microseconds spent inside those fsyncs, summed —
    /// `fsync_total_us / fsyncs` is the mean latency the admin plane's
    /// spike detector samples against.
    pub fsync_total_us: u64,
    /// Slowest single fsync observed, in microseconds.
    pub fsync_max_us: u64,
    /// Segment files created.
    pub segments_created: u64,
    /// Segment files deleted by checkpoint compaction.
    pub segments_removed: u64,
    /// Checkpoints written (temp + fsync + rename).
    pub checkpoints_written: u64,
    /// Payload bytes of written checkpoints.
    pub checkpoint_bytes: u64,
    /// Records recovered intact by [`Wal::open`].
    pub recovered_records: u64,
    /// Bytes of recovered records (frame headers included).
    pub recovered_bytes: u64,
    /// Recoveries that found an incomplete frame at a segment tail (a
    /// torn or partially-fsynced final write) and truncated it away.
    pub torn_tail_truncations: u64,
    /// Records rejected because their CRC-32 did not match (bit rot,
    /// injected bit flips).
    pub crc_corruptions: u64,
    /// Frame boundaries that did not hold the frame magic (overwritten
    /// or shifted data).
    pub bad_magic_records: u64,
    /// Frame headers declaring a length beyond the configured maximum.
    pub oversized_records: u64,
    /// Frames whose payload was too short to carry the record header.
    pub malformed_records: u64,
    /// Whole segments discarded because an *earlier* segment was
    /// corrupt (prefix semantics: nothing after the damage survives).
    pub segments_dropped: u64,
    /// Total bytes discarded by recovery (truncated tails, corrupt
    /// records, dropped segments).
    pub discarded_bytes: u64,
    /// Checkpoint files rejected at load (bad frame, bad CRC).
    pub checkpoint_corruptions: u64,
    /// Recovered records whose payload failed to decode at the layer
    /// above (bumped by the storage backend, carried here so one
    /// struct tells the whole recovery story).
    pub decode_failures: u64,
    /// Write errors the log absorbed without panicking (the replica
    /// keeps running; durability of the affected records is void).
    pub io_errors: u64,
}

impl StorageCounters {
    /// Field-wise sum of `other` into `self` (cluster aggregation).
    /// `fsync_max_us` is the one non-additive field: the merged value
    /// is the max, not the sum.
    pub fn merge(&mut self, other: &StorageCounters) {
        let max_us = self.fsync_max_us.max(other.fsync_max_us);
        for ((_, a), (_, b)) in self.fields_mut().into_iter().zip(other.fields()) {
            *a = a.wrapping_add(b);
        }
        self.fsync_max_us = max_us;
    }

    /// `(name, value)` pairs in declaration order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        let mut c = *self;
        c.fields_mut().into_iter().map(|(n, v)| (n, *v)).collect()
    }

    /// Total records recovery refused to trust (every corruption class).
    pub fn corrupt_records(&self) -> u64 {
        self.crc_corruptions
            + self.bad_magic_records
            + self.oversized_records
            + self.malformed_records
    }

    /// Renders as a JSON object fragment (stable key order), for
    /// embedding in replica reports.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.fields().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push('}');
        out
    }

    fn fields_mut(&mut self) -> Vec<(&'static str, &mut u64)> {
        vec![
            ("records_appended", &mut self.records_appended),
            ("bytes_appended", &mut self.bytes_appended),
            ("fsyncs", &mut self.fsyncs),
            ("fsync_total_us", &mut self.fsync_total_us),
            ("fsync_max_us", &mut self.fsync_max_us),
            ("segments_created", &mut self.segments_created),
            ("segments_removed", &mut self.segments_removed),
            ("checkpoints_written", &mut self.checkpoints_written),
            ("checkpoint_bytes", &mut self.checkpoint_bytes),
            ("recovered_records", &mut self.recovered_records),
            ("recovered_bytes", &mut self.recovered_bytes),
            ("torn_tail_truncations", &mut self.torn_tail_truncations),
            ("crc_corruptions", &mut self.crc_corruptions),
            ("bad_magic_records", &mut self.bad_magic_records),
            ("oversized_records", &mut self.oversized_records),
            ("malformed_records", &mut self.malformed_records),
            ("segments_dropped", &mut self.segments_dropped),
            ("discarded_bytes", &mut self.discarded_bytes),
            ("checkpoint_corruptions", &mut self.checkpoint_corruptions),
            ("decode_failures", &mut self.decode_failures),
            ("io_errors", &mut self.io_errors),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_and_json() {
        let mut a = StorageCounters {
            records_appended: 2,
            fsyncs: 1,
            ..StorageCounters::default()
        };
        let b = StorageCounters {
            records_appended: 3,
            discarded_bytes: 7,
            ..StorageCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.records_appended, 5);
        assert_eq!(a.discarded_bytes, 7);
        let json = a.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"records_appended\":5"));
        assert!(json.contains("\"discarded_bytes\":7"));
        assert_eq!(a.fields().len(), 21);
    }

    #[test]
    fn merge_takes_max_of_fsync_max() {
        let mut a = StorageCounters {
            fsync_total_us: 100,
            fsync_max_us: 40,
            ..StorageCounters::default()
        };
        let b = StorageCounters {
            fsync_total_us: 50,
            fsync_max_us: 90,
            ..StorageCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.fsync_total_us, 150, "totals add");
        assert_eq!(a.fsync_max_us, 90, "max is max, not sum");
    }
}
