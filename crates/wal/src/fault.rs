//! Disk-fault injection.
//!
//! Two complementary ways to hurt a log:
//!
//! * [`FaultFs`] — a [`SegmentFs`](crate::SegmentFs) that models the
//!   **page cache**: bytes written to a segment live in memory until
//!   `fsync`, exactly like an OS crash boundary. [`FaultHandle::crash`]
//!   then "pulls the power" with a chosen [`DiskFault`]: lose the whole
//!   unsynced tail (a partial fsync), persist only a prefix of it (a
//!   torn write), or persist it with a bit flipped (a write that hit
//!   the platter wrong). This exercises the *crash* half of the fault
//!   model with byte-level precision.
//! * Post-hoc injectors ([`truncate_tail`], [`flip_bit`],
//!   [`append_garbage`], [`append_oversized_header`],
//!   [`corrupt_checkpoint`]) — mutate the files of a closed log
//!   directly, modelling the *media* half: bit rot, a misdirected
//!   write, a filesystem that lost a tail at rest.
//!
//! Both halves feed the same requirement on recovery: roll back to the
//! last valid prefix, count what was discarded, never panic.

use crate::wal::{SegmentFile, SegmentFs, SEGMENT_SUFFIX};
use crate::CHECKPOINT_FILE;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// What the simulated power loss does to the unsynced tail of the
/// active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Partial fsync: every byte not yet synced vanishes.
    LoseUnsynced,
    /// Torn write: only the first `keep` bytes of the unsynced tail
    /// reach the file.
    TornTail {
        /// Bytes of the unsynced tail that survive.
        keep: usize,
    },
    /// The unsynced tail lands in full, but with one bit flipped at
    /// `offset` (into the unsynced region, clamped to its length).
    BitFlipTail {
        /// Byte offset of the flipped bit within the unsynced tail.
        offset: usize,
    },
}

#[derive(Debug, Default)]
struct FileState {
    file: Option<File>,
    unsynced: Vec<u8>,
    crashed: bool,
}

/// One segment as seen through the page-cache model.
#[derive(Debug)]
pub struct FaultyFile {
    state: Arc<Mutex<FileState>>,
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock().expect("fault state");
        if st.crashed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "disk crashed"));
        }
        st.unsynced.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SegmentFile for FaultyFile {
    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault state");
        if st.crashed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "disk crashed"));
        }
        let pending = std::mem::take(&mut st.unsynced);
        let file = st.file.as_mut().expect("backing file");
        file.write_all(&pending)?;
        file.sync_data()
    }
}

/// Shared control over every file a [`FaultFs`] has handed out.
#[derive(Debug, Clone, Default)]
pub struct FaultHandle {
    files: Arc<Mutex<Vec<Arc<Mutex<FileState>>>>>,
}

impl FaultHandle {
    /// Simulates power loss: applies `fault` to the most recently
    /// created segment's unsynced tail and poisons every file (further
    /// writes fail like a dead disk). Returns the number of unsynced
    /// bytes the fault had to play with.
    pub fn crash(&self, fault: DiskFault) -> io::Result<usize> {
        let files = self.files.lock().expect("fault files");
        let mut tail_len = 0;
        for (i, state) in files.iter().enumerate() {
            let mut st = state.lock().expect("fault state");
            let unsynced = std::mem::take(&mut st.unsynced);
            st.crashed = true;
            // Older files' unsynced bytes are simply lost; the fault
            // shape applies to the newest (the active segment).
            if i + 1 < files.len() {
                continue;
            }
            tail_len = unsynced.len();
            let survives: Vec<u8> = match fault {
                DiskFault::LoseUnsynced => Vec::new(),
                DiskFault::TornTail { keep } => unsynced[..keep.min(unsynced.len())].to_vec(),
                DiskFault::BitFlipTail { offset } => {
                    let mut bytes = unsynced;
                    if !bytes.is_empty() {
                        let at = offset.min(bytes.len() - 1);
                        bytes[at] ^= 0x10;
                    }
                    bytes
                }
            };
            if !survives.is_empty() {
                let file = st.file.as_mut().expect("backing file");
                file.write_all(&survives)?;
                file.sync_data()?;
            }
        }
        Ok(tail_len)
    }

    /// Total bytes currently buffered (written but not synced) across
    /// all files.
    pub fn unsynced_bytes(&self) -> usize {
        self.files
            .lock()
            .expect("fault files")
            .iter()
            .map(|s| s.lock().expect("fault state").unsynced.len())
            .sum()
    }
}

/// A [`SegmentFs`] whose files buffer writes until fsync. Create one,
/// keep its [`FaultHandle`], and pass it to
/// [`Wal::open_with_fs`](crate::Wal::open_with_fs).
#[derive(Debug, Default)]
pub struct FaultFs {
    handle: FaultHandle,
}

impl FaultFs {
    /// A fresh page-cache model plus the handle that crashes it.
    pub fn new() -> (FaultFs, FaultHandle) {
        let fs = FaultFs::default();
        let handle = fs.handle.clone();
        (fs, handle)
    }
}

impl SegmentFs for FaultFs {
    fn create(&mut self, path: &Path) -> io::Result<Box<dyn SegmentFile>> {
        let state = Arc::new(Mutex::new(FileState {
            file: Some(File::create(path)?),
            unsynced: Vec::new(),
            crashed: false,
        }));
        self.handle
            .files
            .lock()
            .expect("fault files")
            .push(state.clone());
        Ok(Box::new(FaultyFile { state }))
    }
}

/// The highest-numbered non-empty segment in `dir`, if any — the one a
/// crash would have been writing.
pub fn last_segment(dir: &Path) -> io::Result<Option<PathBuf>> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        else {
            continue;
        };
        let Ok(id) = stem.parse::<u64>() else {
            continue;
        };
        if entry.metadata()?.len() == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|(b, _)| id > *b) {
            best = Some((id, entry.path()));
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// Chops `bytes` off the end of the last segment (mid-record
/// truncation when `bytes` lands inside a frame). Returns the new
/// length.
pub fn truncate_tail(dir: &Path, bytes: u64) -> io::Result<u64> {
    let Some(path) = last_segment(dir)? else {
        return Ok(0);
    };
    let len = fs::metadata(&path)?.len();
    let new_len = len.saturating_sub(bytes);
    let f = OpenOptions::new().write(true).open(&path)?;
    f.set_len(new_len)?;
    f.sync_all()?;
    Ok(new_len)
}

/// Flips one bit `offset_from_end` bytes before the end of the last
/// segment (bit rot in a record body or header).
pub fn flip_bit(dir: &Path, offset_from_end: u64) -> io::Result<()> {
    let Some(path) = last_segment(dir)? else {
        return Ok(());
    };
    let mut bytes = fs::read(&path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    let at = bytes.len().saturating_sub(1 + offset_from_end as usize);
    bytes[at] ^= 0x08;
    fs::write(&path, &bytes)
}

/// Appends raw garbage to the last segment (a misdirected write).
pub fn append_garbage(dir: &Path, garbage: &[u8]) -> io::Result<()> {
    let Some(path) = last_segment(dir)? else {
        return Ok(());
    };
    let mut f = OpenOptions::new().append(true).open(&path)?;
    f.write_all(garbage)
}

/// Appends a frame header declaring an absurd payload length to the
/// last segment — recovery's allocation guard must trip on the header
/// alone.
pub fn append_oversized_header(dir: &Path) -> io::Result<()> {
    let mut header = Vec::with_capacity(12);
    header.extend_from_slice(&icc_types::frame::MAGIC.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    append_garbage(dir, &header)
}

/// Flips a bit in the checkpoint file, if one exists. Returns whether
/// there was a checkpoint to corrupt.
pub fn corrupt_checkpoint(dir: &Path) -> io::Result<bool> {
    let path = dir.join(CHECKPOINT_FILE);
    let mut bytes = match fs::read(&path) {
        Ok(b) if !b.is_empty() => b,
        Ok(_) => return Ok(false),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&path, &bytes)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Wal, WalOptions};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icc-wal-fault-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(i: u64) -> Vec<u8> {
        format!("fault-record-{i}-{}", "y".repeat(24)).into_bytes()
    }

    /// Appends `synced` records under per-commit fsync, then `unsynced`
    /// more with fsync disabled (huge group window), then crashes.
    fn write_and_crash(dir: &Path, synced: u64, unsynced: u64, fault: DiskFault) {
        let opts = WalOptions {
            fsync: crate::FsyncPolicy::Group {
                max_pending: usize::MAX,
                window: std::time::Duration::from_secs(3600),
            },
            ..WalOptions::default()
        };
        let (fs_impl, handle) = FaultFs::new();
        let (mut wal, recovered) = Wal::open_with_fs(dir, opts, Box::new(fs_impl)).unwrap();
        assert!(recovered.is_empty());
        for i in 0..synced {
            wal.append(i, &payload(i)).unwrap();
        }
        wal.sync().unwrap();
        for i in synced..synced + unsynced {
            wal.append(i, &payload(i)).unwrap();
        }
        assert!(handle.unsynced_bytes() > 0 || unsynced == 0);
        handle.crash(fault).unwrap();
        // The wal object is now useless (poisoned disk); drop it like
        // the process dying.
        drop(wal);
    }

    #[test]
    fn partial_fsync_loses_only_unsynced_tail() {
        let dir = tmp_dir("partial");
        write_and_crash(&dir, 6, 4, DiskFault::LoseUnsynced);
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 6, "synced prefix intact, tail gone");
        assert_eq!(recovered.last().unwrap().round, 5);
        assert_eq!(wal.counters().corrupt_records(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_synced_plus_complete_frames() {
        let dir = tmp_dir("torn");
        // Keep 1.5 records' worth of the unsynced tail: one complete
        // frame survives, the half frame is truncated away.
        let record_len = icc_types::frame::HEADER_LEN + 8 + payload(6).len();
        write_and_crash(
            &dir,
            6,
            4,
            DiskFault::TornTail {
                keep: record_len + record_len / 2,
            },
        );
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 7, "6 synced + 1 complete torn-tail");
        assert_eq!(recovered.last().unwrap().round, 6);
        let c = wal.counters();
        assert_eq!(c.torn_tail_truncations, 1);
        assert!(c.discarded_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_tail_rolls_back_to_synced_prefix() {
        let dir = tmp_dir("flip");
        // Flip a bit in the first unsynced record's payload.
        write_and_crash(&dir, 6, 4, DiskFault::BitFlipTail { offset: 20 });
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 6, "flipped record and after discarded");
        let c = wal.counters();
        assert_eq!(c.crc_corruptions, 1);
        assert!(c.discarded_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_with_nothing_synced_recovers_empty() {
        let dir = tmp_dir("empty");
        write_and_crash(&dir, 0, 5, DiskFault::LoseUnsynced);
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(wal.counters().corrupt_records(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn post_hoc_injectors_cover_media_faults() {
        let dir = tmp_dir("media");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..8 {
                wal.append(i, &payload(i)).unwrap();
            }
        }
        // Mid-record truncation.
        truncate_tail(&dir, 10).unwrap();
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 7);
        assert_eq!(wal.counters().torn_tail_truncations, 1);
        drop(wal);
        // Oversized header appended after the valid prefix.
        append_oversized_header(&dir).unwrap();
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 7);
        assert_eq!(wal.counters().oversized_records, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
