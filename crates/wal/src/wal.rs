//! The append-only segmented log.
//!
//! On disk a WAL directory holds numbered segment files
//! (`wal-0000000000.seg`, `wal-0000000001.seg`, …). Each segment is a
//! concatenation of frames in the [`icc_types::frame`] format; each
//! frame's payload starts with the record's **round** as a little-endian
//! `u64`, followed by the caller's opaque bytes. Carrying the round in
//! the storage layer (redundantly with whatever the payload encodes)
//! lets the log compact — delete whole segments whose every record is
//! at or below a checkpointed round — without understanding payloads.
//!
//! A freshly opened log never appends to an existing segment: recovery
//! scans and (if needed) truncates the old files, then the first append
//! starts a new segment with the next id. That keeps the invariant that
//! only the *tail* of the newest segment can ever be torn by a crash.

use crate::StorageCounters;
use icc_types::frame::{self, HEADER_LEN, MAGIC};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Segment file suffix (`wal-<id>.seg`).
pub const SEGMENT_SUFFIX: &str = ".seg";
const SEGMENT_PREFIX: &str = "wal-";

/// When appended records become durable.
///
/// This is the classic commit-latency / throughput knob: per-commit
/// fsync gives the strongest guarantee (a record acknowledged is a
/// record on the platter) at one disk flush per record; group commit
/// amortises the flush over a batch, bounding how long any record waits
/// by `window`; periodic fsync decouples flushing from appends entirely
/// and can lose up to `interval` of acknowledged-but-unsynced tail on a
/// crash. `fig_durability` measures the tradeoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append.
    PerCommit,
    /// `fsync` once `max_pending` records are queued or the oldest
    /// queued record has waited `window`, whichever comes first.
    Group {
        /// Flush as soon as this many records are pending.
        max_pending: usize,
        /// Flush when the oldest pending record has waited this long.
        window: Duration,
    },
    /// `fsync` at most once per `interval`, checked on each append.
    Periodic {
        /// Minimum spacing between flushes.
        interval: Duration,
    },
}

impl FsyncPolicy {
    /// Parses the `replica --fsync` flag syntax: `per-commit`,
    /// `group:<max_pending>:<window_ms>`, `periodic:<interval_ms>`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let mut num = |name: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("fsync policy `{head}` needs {name}"))?
                .parse::<u64>()
                .map_err(|_| format!("bad {name} in fsync policy `{s}`"))
        };
        let policy = match head {
            "per-commit" => FsyncPolicy::PerCommit,
            "group" => FsyncPolicy::Group {
                max_pending: num("max_pending")? as usize,
                window: Duration::from_millis(num("window_ms")?),
            },
            "periodic" => FsyncPolicy::Periodic {
                interval: Duration::from_millis(num("interval_ms")?),
            },
            other => return Err(format!("unknown fsync policy `{other}`")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in fsync policy `{s}`"));
        }
        Ok(policy)
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::PerCommit => write!(f, "per-commit"),
            FsyncPolicy::Group {
                max_pending,
                window,
            } => write!(f, "group:{max_pending}:{}", window.as_millis()),
            FsyncPolicy::Periodic { interval } => {
                write!(f, "periodic:{}", interval.as_millis())
            }
        }
    }
}

/// Tuning for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Durability policy for appended records.
    pub fsync: FsyncPolicy,
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_max_bytes: u64,
    /// Reject records (and, on recovery, headers declaring) more than
    /// this many payload bytes — same role as the frame layer's
    /// allocation guard on the network path.
    pub max_record_len: u32,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncPolicy::PerCommit,
            segment_max_bytes: 1 << 20,
            max_record_len: frame::DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// One record handed back by [`Wal::open`], in append order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredRecord {
    /// Round tag the record was appended under.
    pub round: u64,
    /// The caller's payload bytes (round prefix stripped).
    pub payload: Vec<u8>,
}

/// Minimal file surface the log needs — [`Write`] plus a durability
/// barrier. `std::fs::File` is the real thing; the fault harness
/// substitutes a page-cache model whose crashes tear and drop writes.
pub trait SegmentFile: Write + Send {
    /// Flushes buffered bytes and makes them durable (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
}

impl SegmentFile for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Factory for segment files, so tests can interpose the fault layer.
pub trait SegmentFs: Send {
    /// Creates (truncating) the segment file at `path`.
    fn create(&mut self, path: &Path) -> io::Result<Box<dyn SegmentFile>>;
}

/// The real filesystem.
#[derive(Debug, Default)]
pub struct OsFs;

impl SegmentFs for OsFs {
    fn create(&mut self, path: &Path) -> io::Result<Box<dyn SegmentFile>> {
        Ok(Box::new(File::create(path)?))
    }
}

/// A sealed (rotated or recovered) segment: kept only for compaction
/// bookkeeping.
#[derive(Debug)]
struct Sealed {
    path: PathBuf,
    /// Highest round of any record in the segment; `None` for an empty
    /// segment (deletable by any checkpoint).
    max_round: Option<u64>,
}

/// Append-only segmented write-ahead log. See the [module](self) docs
/// for the on-disk format and [`Wal::open`] for recovery semantics.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    fs: Box<dyn SegmentFs>,
    active: Option<Box<dyn SegmentFile>>,
    active_path: PathBuf,
    active_len: u64,
    active_max_round: Option<u64>,
    next_id: u64,
    sealed: Vec<Sealed>,
    pending_records: usize,
    pending_oldest: Option<Instant>,
    last_sync: Instant,
    scratch: Vec<u8>,
    counters: StorageCounters,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("opts", &self.opts)
            .field("active_len", &self.active_len)
            .field("next_id", &self.next_id)
            .field("sealed", &self.sealed.len())
            .field("pending_records", &self.pending_records)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens (creating the directory if needed) the log at `dir` on the
    /// real filesystem and recovers every intact record.
    pub fn open(dir: &Path, opts: WalOptions) -> io::Result<(Wal, Vec<RecoveredRecord>)> {
        Wal::open_with_fs(dir, opts, Box::new(OsFs))
    }

    /// [`Wal::open`] with a caller-supplied filesystem (fault harness).
    ///
    /// Recovery scans segments in id order and enforces the **prefix
    /// invariant**: the first damaged byte ends the recovered log. An
    /// incomplete frame at a segment tail is a torn write — truncated
    /// away, counted, and recovery continues *only if* no later segment
    /// exists (a torn tail mid-log means everything after it is of
    /// unknown provenance). Corrupt records (bad CRC, bad magic,
    /// oversized or malformed headers) likewise end the log: the
    /// segment is truncated to the last valid record and all later
    /// segments are deleted. Recovery never panics on file contents.
    pub fn open_with_fs(
        dir: &Path,
        opts: WalOptions,
        fs_impl: Box<dyn SegmentFs>,
    ) -> io::Result<(Wal, Vec<RecoveredRecord>)> {
        fs::create_dir_all(dir)?;
        let mut counters = StorageCounters::default();
        let mut ids = segment_ids(dir)?;
        ids.sort_unstable();

        let mut records = Vec::new();
        let mut sealed = Vec::new();
        let mut damaged = false;
        for (pos, &id) in ids.iter().enumerate() {
            let path = segment_path(dir, id);
            if damaged {
                // Everything after the first damage is untrusted: drop
                // the whole segment and account for its bytes.
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                counters.segments_dropped += 1;
                counters.discarded_bytes += len;
                fs::remove_file(&path)?;
                continue;
            }
            let scan = scan_segment(&path, opts.max_record_len, &mut counters)?;
            let file_len = fs::metadata(&path)?.len();
            if scan.valid_len < file_len {
                damaged = true;
                counters.discarded_bytes += file_len - scan.valid_len;
                truncate_file(&path, scan.valid_len)?;
                if pos + 1 == ids.len() && scan.kind == Some(DamageKind::TornTail) {
                    // A torn tail on the *newest* segment is the
                    // expected crash signature, not evidence that
                    // later data is suspect (there is none).
                    damaged = false;
                }
            }
            if scan.valid_len == 0 {
                // Nothing valid in it; no reason to keep the file.
                fs::remove_file(&path)?;
            } else {
                sealed.push(Sealed {
                    path,
                    max_round: scan.max_round,
                });
            }
            records.extend(scan.records);
        }

        counters.recovered_records = records.len() as u64;
        counters.recovered_bytes = records
            .iter()
            .map(|r| (HEADER_LEN + 8 + r.payload.len()) as u64)
            .sum();

        let now = Instant::now();
        let wal = Wal {
            dir: dir.to_path_buf(),
            opts,
            fs: fs_impl,
            active: None,
            active_path: PathBuf::new(),
            active_len: 0,
            active_max_round: None,
            next_id: ids.last().map_or(0, |id| id + 1),
            sealed,
            pending_records: 0,
            pending_oldest: None,
            last_sync: now,
            scratch: Vec::new(),
            counters,
        };
        Ok((wal, records))
    }

    /// Appends one record and applies the fsync policy. Returns whether
    /// the record is durable (synced) when the call returns.
    pub fn append(&mut self, round: u64, payload: &[u8]) -> io::Result<bool> {
        if payload.len() as u64 + 8 > self.opts.max_record_len as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record payload {} exceeds max_record_len {}",
                    payload.len(),
                    self.opts.max_record_len
                ),
            ));
        }
        if self.active.is_none() {
            self.start_segment()?;
        }
        self.scratch.clear();
        let mut inner = Vec::with_capacity(8 + payload.len());
        inner.extend_from_slice(&round.to_le_bytes());
        inner.extend_from_slice(payload);
        frame::frame_into(&inner, &mut self.scratch);

        let file = self.active.as_mut().expect("active segment");
        file.write_all(&self.scratch)?;
        self.active_len += self.scratch.len() as u64;
        self.active_max_round = Some(self.active_max_round.map_or(round, |r| r.max(round)));
        self.counters.records_appended += 1;
        self.counters.bytes_appended += self.scratch.len() as u64;
        self.pending_records += 1;
        if self.pending_oldest.is_none() {
            self.pending_oldest = Some(Instant::now());
        }

        let mut synced = self.maybe_sync()?;
        if self.active_len >= self.opts.segment_max_bytes {
            // Rotation seals the segment through sync_now(), so every
            // pending record is durable at return even if the policy
            // alone would not have synced yet.
            self.rotate()?;
            synced = true;
        }
        Ok(synced)
    }

    /// Forces pending records durable regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.sync_now()
    }

    /// Deletes every sealed segment whose records are all at or below
    /// `round` — called after a checkpoint covering `round` is durable.
    /// The active segment is never compacted (it is still being
    /// written); it falls out at its own rotation.
    pub fn compact_below(&mut self, round: u64) -> io::Result<()> {
        let mut kept = Vec::with_capacity(self.sealed.len());
        for seg in self.sealed.drain(..) {
            if seg.max_round.is_none_or(|r| r <= round) {
                fs::remove_file(&seg.path)?;
                self.counters.segments_removed += 1;
            } else {
                kept.push(seg);
            }
        }
        self.sealed = kept;
        Ok(())
    }

    /// Snapshot of the storage telemetry.
    pub fn counters(&self) -> StorageCounters {
        self.counters
    }

    /// Mutable telemetry access, for layers above to account their own
    /// recovery outcomes (e.g. payload decode failures) in one place.
    pub fn counters_mut(&mut self) -> &mut StorageCounters {
        &mut self.counters
    }

    /// Records appended but not yet known durable.
    pub fn pending_records(&self) -> usize {
        self.pending_records
    }

    /// Segment files currently on disk (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(self.active.is_some())
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn start_segment(&mut self) -> io::Result<()> {
        let path = segment_path(&self.dir, self.next_id);
        let file = self.fs.create(&path)?;
        self.next_id += 1;
        self.active = Some(file);
        self.active_path = path;
        self.active_len = 0;
        self.active_max_round = None;
        self.counters.segments_created += 1;
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Seal only fully-durable segments: sync first so a sealed
        // segment can never carry a torn tail (recovery relies on torn
        // tails appearing only in the newest segment).
        self.sync_now()?;
        self.active = None;
        self.sealed.push(Sealed {
            path: std::mem::take(&mut self.active_path),
            max_round: self.active_max_round.take(),
        });
        self.active_len = 0;
        Ok(())
    }

    fn maybe_sync(&mut self) -> io::Result<bool> {
        let due = match self.opts.fsync {
            FsyncPolicy::PerCommit => true,
            FsyncPolicy::Group {
                max_pending,
                window,
            } => {
                self.pending_records >= max_pending
                    || self
                        .pending_oldest
                        .is_some_and(|oldest| oldest.elapsed() >= window)
            }
            FsyncPolicy::Periodic { interval } => self.last_sync.elapsed() >= interval,
        };
        if due {
            self.sync_now()?;
        }
        Ok(due)
    }

    fn sync_now(&mut self) -> io::Result<()> {
        if let Some(file) = self.active.as_mut() {
            if self.pending_records > 0 {
                let started = Instant::now();
                file.flush()?;
                file.sync()?;
                let us = started.elapsed().as_micros() as u64;
                self.counters.fsyncs += 1;
                self.counters.fsync_total_us += us;
                self.counters.fsync_max_us = self.counters.fsync_max_us.max(us);
            }
        }
        self.pending_records = 0;
        self.pending_oldest = None;
        self.last_sync = Instant::now();
        Ok(())
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{id:010}{SEGMENT_SUFFIX}"))
}

fn segment_ids(dir: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        {
            if let Ok(id) = stem.parse::<u64>() {
                ids.push(id);
            }
        }
    }
    Ok(ids)
}

fn truncate_file(path: &Path, len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DamageKind {
    /// Incomplete frame at the tail (crash signature).
    TornTail,
    /// A structurally broken record (CRC, magic, length, payload).
    Corrupt,
}

struct SegmentScan {
    records: Vec<RecoveredRecord>,
    /// Byte offset of the last frame that validated end-to-end.
    valid_len: u64,
    max_round: Option<u64>,
    kind: Option<DamageKind>,
}

/// Walks one segment frame by frame, stopping (not erroring) at the
/// first byte that does not validate. File contents never panic; only
/// real I/O errors propagate.
fn scan_segment(
    path: &Path,
    max_record_len: u32,
    counters: &mut StorageCounters,
) -> io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;

    let mut scan = SegmentScan {
        records: Vec::new(),
        valid_len: 0,
        max_round: None,
        kind: None,
    };
    let mut off = 0usize;
    while off < bytes.len() {
        let avail = &bytes[off..];
        if avail.len() < HEADER_LEN {
            scan.kind = Some(DamageKind::TornTail);
            counters.torn_tail_truncations += 1;
            break;
        }
        let word = |at: usize| u32::from_le_bytes(avail[at..at + 4].try_into().expect("4 bytes"));
        if word(0) != MAGIC {
            scan.kind = Some(DamageKind::Corrupt);
            counters.bad_magic_records += 1;
            break;
        }
        let len = word(4);
        if len > max_record_len {
            scan.kind = Some(DamageKind::Corrupt);
            counters.oversized_records += 1;
            break;
        }
        let declared_crc = word(8);
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            scan.kind = Some(DamageKind::TornTail);
            counters.torn_tail_truncations += 1;
            break;
        }
        let payload = &avail[HEADER_LEN..total];
        if frame::crc32(payload) != declared_crc {
            scan.kind = Some(DamageKind::Corrupt);
            counters.crc_corruptions += 1;
            break;
        }
        if payload.len() < 8 {
            scan.kind = Some(DamageKind::Corrupt);
            counters.malformed_records += 1;
            break;
        }
        let round = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        scan.records.push(RecoveredRecord {
            round,
            payload: payload[8..].to_vec(),
        });
        scan.max_round = Some(scan.max_round.map_or(round, |r| r.max(round)));
        off += total;
        scan.valid_len = off as u64;
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icc-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(i: u64) -> Vec<u8> {
        format!("record-{i}-{}", "x".repeat(32)).into_bytes()
    }

    #[test]
    fn fsync_policy_parse_roundtrip() {
        for s in ["per-commit", "group:32:5", "periodic:10"] {
            let p = FsyncPolicy::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!(FsyncPolicy::parse("group:32").is_err());
        assert!(FsyncPolicy::parse("periodic:abc").is_err());
        assert!(FsyncPolicy::parse("eventually").is_err());
        assert!(FsyncPolicy::parse("per-commit:1").is_err());
    }

    #[test]
    fn append_recover_roundtrip() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
            assert!(recovered.is_empty());
            for i in 0..20 {
                assert!(wal.append(i, &payload(i)).unwrap(), "per-commit is synced");
            }
            assert_eq!(wal.counters().records_appended, 20);
            assert_eq!(wal.counters().fsyncs, 20);
        }
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 20);
        for (i, rec) in recovered.iter().enumerate() {
            assert_eq!(rec.round, i as u64);
            assert_eq!(rec.payload, payload(i as u64));
        }
        assert_eq!(wal.counters().recovered_records, 20);
        assert_eq!(wal.counters().corrupt_records(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_compaction() {
        let dir = tmp_dir("rotate");
        let opts = WalOptions {
            segment_max_bytes: 256,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        for i in 0..40 {
            wal.append(i, &payload(i)).unwrap();
        }
        assert!(
            wal.counters().segments_created >= 4,
            "small segments must rotate: {:?}",
            wal.counters()
        );
        let before = segment_ids(&dir).unwrap().len();
        wal.compact_below(30).unwrap();
        let after = segment_ids(&dir).unwrap().len();
        assert!(after < before, "compaction must delete covered segments");
        assert!(wal.counters().segments_removed > 0);
        drop(wal);

        // Surviving records are exactly a suffix (plus nothing lost
        // above the bar).
        let (_, recovered) = Wal::open(&dir, opts).unwrap();
        let rounds: Vec<u64> = recovered.iter().map(|r| r.round).collect();
        let min = *rounds.first().unwrap();
        assert!(min <= 31, "nothing above the bar may be lost: {rounds:?}");
        let expected: Vec<u64> = (min..40).collect();
        assert_eq!(rounds, expected, "survivors must be a contiguous suffix");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_policy_batches_fsyncs() {
        let dir = tmp_dir("group");
        let opts = WalOptions {
            fsync: FsyncPolicy::Group {
                max_pending: 8,
                window: Duration::from_secs(60),
            },
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        for i in 0..64 {
            wal.append(i, &payload(i)).unwrap();
        }
        let c = wal.counters();
        assert_eq!(c.records_appended, 64);
        assert_eq!(c.fsyncs, 64 / 8, "one flush per full batch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_append_rejected() {
        let dir = tmp_dir("oversize");
        let opts = WalOptions {
            max_record_len: 64,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        assert!(wal.append(1, &[0u8; 100]).is_err());
        assert!(wal.append(1, &[0u8; 40]).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncated_to_valid_prefix() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..5 {
                wal.append(i, &payload(i)).unwrap();
            }
        }
        // Tear the tail: append half a frame's worth of a real record.
        let seg = segment_path(&dir, 0);
        let mut inner = 99u64.to_le_bytes().to_vec();
        inner.extend_from_slice(&payload(99));
        let framed = frame::encode_frame(&inner);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&framed[..framed.len() / 2]).unwrap();
        drop(f);

        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 5, "valid prefix survives");
        let c = wal.counters();
        assert_eq!(c.torn_tail_truncations, 1);
        assert!(c.discarded_bytes > 0);
        drop(wal);
        // And the truncation is sticky: a third open sees a clean file.
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 5);
        assert_eq!(wal.counters().torn_tail_truncations, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_drops_later_segments() {
        let dir = tmp_dir("midlog");
        let opts = WalOptions {
            segment_max_bytes: 256,
            ..WalOptions::default()
        };
        {
            let (mut wal, _) = Wal::open(&dir, opts).unwrap();
            for i in 0..40 {
                wal.append(i, &payload(i)).unwrap();
            }
            assert!(wal.segment_count() >= 3);
        }
        // Flip one bit in the FIRST segment's second record.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let record_len = HEADER_LEN + 8 + payload(0).len();
        let hit = record_len + HEADER_LEN + 8 + 2;
        bytes[hit] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let (wal, recovered) = Wal::open(&dir, opts).unwrap();
        // Only records before the corruption survive; every later
        // segment is gone.
        assert_eq!(recovered.len(), 1, "prefix ends at the flipped bit");
        assert_eq!(recovered[0].round, 0);
        let c = wal.counters();
        assert_eq!(c.crc_corruptions, 1);
        assert!(c.segments_dropped >= 2, "{c:?}");
        assert!(c.discarded_bytes > 0);
        assert_eq!(segment_ids(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_and_oversized_headers_rejected() {
        let dir = tmp_dir("garbage");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..3 {
                wal.append(i, &payload(i)).unwrap();
            }
        }
        let seg = segment_path(&dir, 0);
        // Garbage that can't be a frame header.
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(b"NOT A FRAME AT ALL").unwrap();
        drop(f);
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(wal.counters().bad_magic_records, 1);
        drop(wal);

        // A header declaring an absurd length: guard trips, no
        // allocation of the declared size.
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&MAGIC.to_le_bytes()).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        drop(f);
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(wal.counters().oversized_records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_payload_is_malformed() {
        let dir = tmp_dir("malformed");
        fs::create_dir_all(&dir).unwrap();
        // A valid frame whose payload is too short to carry the round.
        fs::write(segment_path(&dir, 0), frame::encode_frame(b"tiny")).unwrap();
        let (wal, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(wal.counters().malformed_records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_open_never_appends_to_old_segments() {
        let dir = tmp_dir("freshseg");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.append(1, &payload(1)).unwrap();
        }
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.append(2, &payload(2)).unwrap();
        }
        let ids = {
            let mut ids = segment_ids(&dir).unwrap();
            ids.sort_unstable();
            ids
        };
        assert_eq!(ids, vec![0, 1], "each incarnation gets its own segment");
        let (_, recovered) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
