//! A Tendermint-style fixed-pace protocol \[8\] — the paper's example of
//! a protocol that is **not optimistically responsive** (§1.1): "in
//! Tendermint, every round takes time O(Δbnd), even when the leader is
//! honest."
//!
//! Faithful-enough model for the responsiveness comparison (E5): each
//! round runs propose → prevote → precommit with real `n − t` quorum
//! counting, but a replica only *enters* round `r` at local time
//! `r · Δround` — the fixed round schedule that makes throughput
//! `1/Δround` regardless of how fast the network actually is. Commit
//! latency within a round is still `~3δ`; it is the *round pacing* that
//! is clamped.

use icc_crypto::{hash_parts, Hash256};
use icc_sim::{Context, Node, WireMessage};
use icc_types::{NodeIndex, SimDuration};
use std::collections::{BTreeMap, HashSet};

/// Tendermint-style wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmMessage {
    /// The round leader's proposal.
    Proposal {
        /// The round.
        round: u64,
        /// Proposed block id.
        block: Hash256,
        /// Modeled payload size.
        payload_bytes: u32,
    },
    /// First voting phase, all-to-all.
    Prevote {
        /// The round.
        round: u64,
        /// Voted block.
        block: Hash256,
        /// Voter.
        voter: u32,
    },
    /// Second voting phase, all-to-all.
    Precommit {
        /// The round.
        round: u64,
        /// Voted block.
        block: Hash256,
        /// Voter.
        voter: u32,
    },
}

impl WireMessage for TmMessage {
    fn wire_bytes(&self) -> usize {
        match self {
            TmMessage::Proposal { payload_bytes, .. } => 60 + *payload_bytes as usize + 64,
            TmMessage::Prevote { .. } | TmMessage::Precommit { .. } => 44 + 64,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            TmMessage::Proposal { .. } => "tm-proposal",
            TmMessage::Prevote { .. } => "tm-prevote",
            TmMessage::Precommit { .. } => "tm-precommit",
        }
    }
}

/// Observable events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmEvent {
    /// A block committed in a round.
    Committed {
        /// The round.
        round: u64,
        /// The block.
        block: Hash256,
    },
}

/// One fixed-pace replica.
#[derive(Debug)]
pub struct TendermintNode {
    n: usize,
    t: usize,
    round_interval: SimDuration,
    payload_bytes: u32,
    round: u64,
    prevotes: BTreeMap<(u64, Hash256), HashSet<u32>>,
    precommits: BTreeMap<(u64, Hash256), HashSet<u32>>,
    prevoted: HashSet<u64>,
    precommitted: HashSet<u64>,
    committed: HashSet<u64>,
}

impl TendermintNode {
    /// A replica with the given fixed round interval (`O(Δbnd)`).
    pub fn new(n: usize, round_interval: SimDuration, payload_bytes: u32) -> TendermintNode {
        TendermintNode {
            n,
            t: n.div_ceil(3) - 1,
            round_interval,
            payload_bytes,
            round: 0,
            prevotes: BTreeMap::new(),
            precommits: BTreeMap::new(),
            prevoted: HashSet::new(),
            precommitted: HashSet::new(),
            committed: HashSet::new(),
        }
    }

    /// Rounds committed so far.
    pub fn committed_rounds(&self) -> usize {
        self.committed.len()
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    fn leader_of(&self, round: u64) -> NodeIndex {
        NodeIndex::new((round % self.n as u64) as u32)
    }

    fn enter_round(&mut self, round: u64, ctx: &mut Context<'_, TmMessage, TmEvent>) {
        self.round = round;
        // Schedule the *next* round at the fixed interval — this is the
        // non-responsiveness: no matter how fast this round completes,
        // the chain does not accelerate.
        ctx.set_timer(self.round_interval, round + 1);
        if self.leader_of(round) == ctx.me() {
            let block = hash_parts("tm-block", &[&round.to_le_bytes()]);
            ctx.broadcast(TmMessage::Proposal {
                round,
                block,
                payload_bytes: self.payload_bytes,
            });
        }
    }
}

impl Node for TendermintNode {
    type Msg = TmMessage;
    type External = ();
    type Output = TmEvent;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        self.enter_round(0, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>, tag: u64) {
        if tag == self.round + 1 {
            self.enter_round(tag, ctx);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
        _from: NodeIndex,
        msg: Self::Msg,
    ) {
        match msg {
            TmMessage::Proposal { round, block, .. } => {
                if self.prevoted.insert(round) {
                    ctx.broadcast(TmMessage::Prevote {
                        round,
                        block,
                        voter: ctx.me().get(),
                    });
                }
            }
            TmMessage::Prevote {
                round,
                block,
                voter,
            } => {
                let e = self.prevotes.entry((round, block)).or_default();
                e.insert(voter);
                if e.len() >= self.quorum() && self.precommitted.insert(round) {
                    ctx.broadcast(TmMessage::Precommit {
                        round,
                        block,
                        voter: ctx.me().get(),
                    });
                }
            }
            TmMessage::Precommit {
                round,
                block,
                voter,
            } => {
                let e = self.precommits.entry((round, block)).or_default();
                e.insert(voter);
                if e.len() >= self.quorum() && self.committed.insert(round) {
                    ctx.output(TmEvent::Committed { round, block });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icc_sim::delay::FixedDelay;
    use icc_sim::SimulationBuilder;

    fn run(
        n: usize,
        delta_ms: u64,
        interval_ms: u64,
        secs: u64,
    ) -> icc_sim::Simulation<TendermintNode> {
        let nodes = (0..n)
            .map(|_| TendermintNode::new(n, SimDuration::from_millis(interval_ms), 1024))
            .collect();
        let mut sim = SimulationBuilder::new(2)
            .delay(FixedDelay::new(SimDuration::from_millis(delta_ms)))
            .build(nodes);
        sim.run_for(SimDuration::from_secs(secs));
        sim
    }

    #[test]
    fn commits_every_round() {
        let sim = run(4, 10, 100, 2);
        // 2s / 100ms = 20 rounds; each commits on every node.
        let commits = sim.nodes()[0].committed_rounds();
        assert!((18..=21).contains(&commits), "commits {commits}");
    }

    #[test]
    fn throughput_clamped_by_interval_not_network() {
        // Halving δ must NOT increase throughput — the defining
        // non-responsiveness property.
        let fast = run(4, 2, 200, 4);
        let slow = run(4, 50, 200, 4);
        let c_fast = fast.nodes()[0].committed_rounds();
        let c_slow = slow.nodes()[0].committed_rounds();
        assert_eq!(
            c_fast, c_slow,
            "throughput must depend only on the interval"
        );
    }

    #[test]
    fn commit_latency_is_3_delta_within_round() {
        let sim = run(4, 10, 500, 1);
        // Round 0 proposal at t=0; commit after proposal + prevote +
        // precommit ≈ 3δ = 30ms.
        let commit = sim
            .outputs()
            .iter()
            .find(|o| matches!(o.output, TmEvent::Committed { round: 0, .. }))
            .expect("round 0 commits");
        assert!(
            (28_000..40_000).contains(&commit.at.as_micros()),
            "latency {} not ≈ 3δ",
            commit.at
        );
    }
}
