//! Baseline BFT protocols the ICC paper compares against (§1.1),
//! implemented on the same deterministic simulator so timing and
//! traffic comparisons are apples-to-apples:
//!
//! * [`hotstuff`] — chained HotStuff \[36\]: rotating leader, linear
//!   happy path, 3-chain commit, timeout pacemaker. Reciprocal
//!   throughput `2δ`, latency `~6δ`, stalls a full view on a crashed
//!   leader.
//! * [`tendermint`] — a Tendermint-style fixed-pace protocol \[8\]:
//!   real propose/prevote/precommit quorums but a fixed round schedule,
//!   i.e. **not** optimistically responsive — throughput `1/Δround`
//!   regardless of actual network speed.
//!
//! These are deliberately *simplified* baselines (modeled signatures,
//! no full view-synchronization corner cases): the experiments use them
//! for the performance-shape comparisons the paper makes, not as
//! production implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotstuff;
pub mod tendermint;

pub use hotstuff::{HotStuffNode, HsEvent, HsMessage};
pub use tendermint::{TendermintNode, TmEvent, TmMessage};
