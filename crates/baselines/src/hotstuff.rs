//! Chained HotStuff \[36\], simplified to the level needed for the
//! paper's comparisons (§1.1): rotating leader every view, linear
//! happy-path message pattern (votes go to the *next* leader), 3-chain
//! commit rule, and a timeout pacemaker.
//!
//! Shape properties this implementation reproduces:
//!
//! * reciprocal throughput `2δ` when leaders are honest (one proposal +
//!   one vote hop per view);
//! * commit latency `~6δ` (a block commits only when the 3-chain on top
//!   of it is built — three views later);
//! * a crashed leader stalls its entire view until the pacemaker
//!   timeout fires (no block at all for that view), unlike ICC where
//!   higher-rank proposers fill in and the tree still grows.
//!
//! Cryptography is modeled (votes counted against the `n − t` quorum;
//! wire sizes match signature-bearing messages) but not executed — the
//! comparison experiments measure timing and traffic, not forgery
//! resistance.

use icc_crypto::{hash_parts, Hash256};
use icc_sim::{Context, Node, WireMessage};
use icc_types::{NodeIndex, SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A quorum certificate: `n − t` votes on a block of a view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Qc {
    /// The certified view.
    pub view: u64,
    /// The certified block.
    pub block: Hash256,
}

/// A HotStuff block header (payload modeled by size only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsBlock {
    /// The view this block was proposed in.
    pub view: u64,
    /// Parent block hash.
    pub parent: Hash256,
    /// QC justifying the parent.
    pub justify: Qc,
    /// Modeled payload size in bytes.
    pub payload_bytes: u32,
}

impl HsBlock {
    /// The block hash.
    pub fn hash(&self) -> Hash256 {
        hash_parts(
            "hs-block",
            &[
                &self.view.to_le_bytes(),
                self.parent.as_bytes(),
                &self.justify.view.to_le_bytes(),
                self.justify.block.as_bytes(),
                &self.payload_bytes.to_le_bytes(),
            ],
        )
    }
}

/// HotStuff wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsMessage {
    /// Leader's proposal, broadcast.
    Proposal(HsBlock),
    /// A vote, sent to the next leader.
    Vote {
        /// Voted view.
        view: u64,
        /// Voted block.
        block: Hash256,
        /// Voter index.
        voter: u32,
    },
    /// Pacemaker: view-change message to the next leader.
    NewView {
        /// The view being abandoned.
        view: u64,
        /// The sender's highest QC.
        high_qc: Qc,
        /// Sender index.
        sender: u32,
    },
}

impl WireMessage for HsMessage {
    fn wire_bytes(&self) -> usize {
        match self {
            // header + payload + 48-byte QC signature
            HsMessage::Proposal(b) => 96 + b.payload_bytes as usize + 48,
            HsMessage::Vote { .. } => 44 + 48,
            HsMessage::NewView { .. } => 52 + 48,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            HsMessage::Proposal(_) => "hs-proposal",
            HsMessage::Vote { .. } => "hs-vote",
            HsMessage::NewView { .. } => "hs-newview",
        }
    }
}

/// Observable HotStuff events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsEvent {
    /// A block committed (3-chain completed beneath it).
    Committed {
        /// The committed block's view.
        view: u64,
        /// The committed block.
        block: Hash256,
        /// Its modeled payload size.
        payload_bytes: u32,
    },
    /// A view ended in a pacemaker timeout (no block).
    ViewTimeout {
        /// The timed-out view.
        view: u64,
    },
}

/// One chained-HotStuff replica.
#[derive(Debug)]
pub struct HotStuffNode {
    n: usize,
    t: usize,
    crashed: bool,
    /// Models a mobile just-in-time adversary: the node behaves
    /// honestly except it never proposes when it is the leader (its
    /// leadership window is exactly when the adversary has it).
    suppressed_leader: bool,
    payload_bytes: u32,
    timeout: SimDuration,
    view: u64,
    /// Highest QC known.
    high_qc: Qc,
    /// Blocks by hash.
    blocks: HashMap<Hash256, HsBlock>,
    /// Votes collected by this node as (next-)leader: view → voters.
    votes: BTreeMap<(u64, Hash256), HashSet<u32>>,
    /// NewView messages collected per view.
    new_views: BTreeMap<u64, HashSet<u32>>,
    last_voted_view: u64,
    /// Highest committed view.
    committed_view: u64,
    /// Whether this node proposed in its current leadership.
    proposed_in_view: HashSet<u64>,
    view_entered_at: SimTime,
}

impl HotStuffNode {
    /// A replica for an `n`-party cluster with pacemaker `timeout` and
    /// synthetic payloads of `payload_bytes` per block.
    pub fn new(n: usize, timeout: SimDuration, payload_bytes: u32) -> HotStuffNode {
        let genesis = hash_parts("hs-genesis", &[]);
        HotStuffNode {
            n,
            t: n.div_ceil(3) - 1,
            crashed: false,
            suppressed_leader: false,
            payload_bytes,
            timeout,
            view: 1,
            high_qc: Qc {
                view: 0,
                block: genesis,
            },
            blocks: HashMap::new(),
            votes: BTreeMap::new(),
            new_views: BTreeMap::new(),
            last_voted_view: 0,
            committed_view: 0,
            proposed_in_view: HashSet::new(),
            view_entered_at: SimTime::ZERO,
        }
    }

    /// Marks this node crashed (sends nothing, ever).
    pub fn crashed(mut self) -> HotStuffNode {
        self.crashed = true;
        self
    }

    /// Marks this node as corrupted exactly during its leadership (the
    /// mobile weak-adaptive adversary: with a public round-robin
    /// schedule it always reaches the next leader in time).
    pub fn suppressed_leader(mut self) -> HotStuffNode {
        self.suppressed_leader = true;
        self
    }

    /// The view this replica is currently in.
    pub fn current_view(&self) -> u64 {
        self.view
    }

    /// The highest committed view.
    pub fn committed_view(&self) -> u64 {
        self.committed_view
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    fn leader_of(&self, view: u64) -> NodeIndex {
        NodeIndex::new(((view - 1) % self.n as u64) as u32)
    }

    fn arm_pacemaker(&mut self, ctx: &mut Context<'_, HsMessage, HsEvent>) {
        self.view_entered_at = ctx.now();
        ctx.set_timer(self.timeout, self.view);
    }

    fn try_propose(&mut self, ctx: &mut Context<'_, HsMessage, HsEvent>) {
        if self.crashed
            || self.suppressed_leader
            || self.leader_of(self.view) != ctx.me()
            || self.proposed_in_view.contains(&self.view)
        {
            return;
        }
        // Propose only with a fresh QC or a quorum of NewViews.
        let have_qc = self.high_qc.view + 1 == self.view;
        let have_nv = self
            .new_views
            .get(&(self.view - 1))
            .is_some_and(|s| s.len() >= self.quorum());
        if !(have_qc || have_nv || self.view == 1) {
            return;
        }
        self.proposed_in_view.insert(self.view);
        let block = HsBlock {
            view: self.view,
            parent: self.high_qc.block,
            justify: self.high_qc.clone(),
            payload_bytes: self.payload_bytes,
        };
        ctx.broadcast(HsMessage::Proposal(block));
    }

    fn advance_to(&mut self, view: u64, ctx: &mut Context<'_, HsMessage, HsEvent>) {
        if view <= self.view {
            return;
        }
        self.view = view;
        self.arm_pacemaker(ctx);
        self.try_propose(ctx);
    }

    /// Checks the 3-chain commit rule at `block` and emits commits.
    fn try_commit(&mut self, block: &HsBlock, ctx: &mut Context<'_, HsMessage, HsEvent>) {
        // block.justify certifies b2; b2.justify certifies b1. If views
        // are consecutive (block.view = b2.view + 1 = b1.view + 2), b1
        // and everything below commits.
        let Some(b2) = self.blocks.get(&block.justify.block) else {
            return;
        };
        let Some(b1) = self.blocks.get(&b2.justify.block) else {
            return;
        };
        if block.justify.view == b2.view
            && b2.justify.view == b1.view
            && block.view == b2.view + 1
            && b2.view == b1.view + 1
            && b1.view > self.committed_view
        {
            // Commit b1 and any uncommitted ancestors (ancestors first).
            let mut chain = Vec::new();
            let mut cur = b1.clone();
            loop {
                if cur.view <= self.committed_view {
                    break;
                }
                chain.push(cur.clone());
                match self.blocks.get(&cur.parent) {
                    Some(p) => cur = p.clone(),
                    None => break,
                }
            }
            chain.reverse();
            self.committed_view = b1.view;
            for b in chain {
                ctx.output(HsEvent::Committed {
                    view: b.view,
                    block: b.hash(),
                    payload_bytes: b.payload_bytes,
                });
            }
        }
    }
}

impl Node for HotStuffNode {
    type Msg = HsMessage;
    type External = ();
    type Output = HsEvent;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        if self.crashed {
            return;
        }
        self.arm_pacemaker(ctx);
        self.try_propose(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
        _from: NodeIndex,
        msg: Self::Msg,
    ) {
        if self.crashed {
            return;
        }
        match msg {
            HsMessage::Proposal(block) => {
                // QC signatures are modeled, not executed (see the
                // module docs): integrity comes from this replica's own
                // vote counting, so proposals are accepted structurally.
                let hash = block.hash();
                self.blocks.insert(hash, block.clone());
                if block.justify.view > self.high_qc.view {
                    self.high_qc = block.justify.clone();
                }
                self.try_commit(&block, ctx);
                // Vote once per view, monotonically.
                if block.view >= self.view && block.view > self.last_voted_view {
                    self.last_voted_view = block.view;
                    let next_leader = self.leader_of(block.view + 1);
                    ctx.send(
                        next_leader,
                        HsMessage::Vote {
                            view: block.view,
                            block: hash,
                            voter: ctx.me().get(),
                        },
                    );
                    self.advance_to(block.view + 1, ctx);
                }
            }
            HsMessage::Vote { view, block, voter } => {
                let entry = self.votes.entry((view, block)).or_default();
                entry.insert(voter);
                if entry.len() >= self.quorum() && view >= self.high_qc.view {
                    self.high_qc = Qc { view, block };
                    self.advance_to(view + 1, ctx);
                    self.try_propose(ctx);
                }
            }
            HsMessage::NewView {
                view,
                high_qc,
                sender,
            } => {
                if high_qc.view > self.high_qc.view {
                    self.high_qc = high_qc;
                }
                let entry = self.new_views.entry(view).or_default();
                entry.insert(sender);
                if entry.len() >= self.quorum() {
                    self.advance_to(view + 1, ctx);
                    self.try_propose(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>, tag: u64) {
        if self.crashed || tag != self.view {
            return; // stale pacemaker timer
        }
        ctx.output(HsEvent::ViewTimeout { view: self.view });
        let next_leader = self.leader_of(self.view + 1);
        ctx.send(
            next_leader,
            HsMessage::NewView {
                view: self.view,
                high_qc: self.high_qc.clone(),
                sender: ctx.me().get(),
            },
        );
        // Also count our own new-view if we are the next leader.
        self.advance_to(self.view + 1, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icc_sim::delay::FixedDelay;
    use icc_sim::SimulationBuilder;

    fn run(
        n: usize,
        crashed: &[usize],
        delta_ms: u64,
        timeout_ms: u64,
        secs: u64,
    ) -> icc_sim::Simulation<HotStuffNode> {
        let nodes = (0..n)
            .map(|i| {
                let node = HotStuffNode::new(n, SimDuration::from_millis(timeout_ms), 1024);
                if crashed.contains(&i) {
                    node.crashed()
                } else {
                    node
                }
            })
            .collect();
        let mut sim = SimulationBuilder::new(1)
            .delay(FixedDelay::new(SimDuration::from_millis(delta_ms)))
            .build(nodes);
        sim.run_for(SimDuration::from_secs(secs));
        sim
    }

    #[test]
    fn happy_path_commits_views() {
        let sim = run(4, &[], 10, 1000, 2);
        let commits: Vec<_> = sim
            .outputs()
            .iter()
            .filter(|o| matches!(o.output, HsEvent::Committed { .. }))
            .collect();
        assert!(commits.len() > 50, "got {} commits", commits.len());
        // No timeouts on the happy path.
        assert!(!sim
            .outputs()
            .iter()
            .any(|o| matches!(o.output, HsEvent::ViewTimeout { .. })));
    }

    #[test]
    fn view_time_is_about_2_delta() {
        // Views advance one per 2δ: in 2s with δ=10ms expect ~100 views.
        let sim = run(4, &[], 10, 1000, 2);
        let max_view = sim.nodes().iter().map(|n| n.current_view()).max().unwrap();
        assert!((80..=110).contains(&max_view), "views {max_view}");
    }

    #[test]
    fn commit_latency_is_about_6_delta() {
        // A block of view v commits when the view-(v+2) proposal
        // arrives: ~3 views × 2δ after its own proposal.
        let sim = run(4, &[], 10, 1000, 2);
        // Find when view-10's block committed (event time) vs when view
        // 10 started (≈ 9 views × 2δ).
        let commit_at = sim
            .outputs()
            .iter()
            .find(|o| matches!(o.output, HsEvent::Committed { view: 10, .. }))
            .map(|o| o.at)
            .expect("view 10 committed");
        let view10_proposal_at = SimDuration::from_millis(9 * 20);
        let latency = commit_at.saturating_since(SimTime::ZERO + view10_proposal_at);
        assert!(
            (40_000..90_000).contains(&latency.as_micros()),
            "latency {latency} not ≈ 6δ = 60ms"
        );
    }

    #[test]
    fn crashed_leader_stalls_until_timeout() {
        // Node 0 leads views 1, 5, 9, ...: each of its views costs a
        // full timeout.
        let sim = run(4, &[0], 10, 300, 3);
        let timeouts = sim
            .outputs()
            .iter()
            .filter(|o| matches!(o.output, HsEvent::ViewTimeout { .. }))
            .count();
        assert!(timeouts > 0, "crashed leader must cause timeouts");
        // Still makes progress between crashes.
        let commits = sim
            .outputs()
            .iter()
            .filter(|o| matches!(o.output, HsEvent::Committed { .. }))
            .count();
        assert!(
            commits > 10,
            "progress resumes after view change, got {commits}"
        );
    }

    #[test]
    fn replicas_agree_on_committed_prefix() {
        let sim = run(7, &[], 5, 500, 1);
        let chains: Vec<Vec<Hash256>> = (0..7)
            .map(|i| {
                sim.outputs()
                    .iter()
                    .filter(|o| o.node.as_usize() == i)
                    .filter_map(|o| match &o.output {
                        HsEvent::Committed { block, .. } => Some(*block),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for a in &chains {
            for b in &chains {
                let common = a.len().min(b.len());
                assert_eq!(&a[..common], &b[..common], "commit prefix mismatch");
            }
        }
    }
}
