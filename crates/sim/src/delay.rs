//! Network delay models.
//!
//! A [`DelayModel`] produces the one-way propagation delay for each
//! (sender, receiver) pair. The engine adds retransmission delay for
//! lost messages and then applies the [`policy`](crate::policy) stack
//! (partitions, asynchrony).
//!
//! [`InterDcDelay`] reproduces the deployment environment of the paper's
//! §5: nodes spread over data centers with inter-DC ping RTTs between
//! 6 ms and 110 ms and small jitter.

use icc_types::{NodeIndex, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Produces one-way network delays per (sender, receiver) pair.
pub trait DelayModel {
    /// One-way delay for a message from `from` to `to`.
    fn delay(&self, from: NodeIndex, to: NodeIndex, rng: &mut StdRng) -> SimDuration;

    /// An upper bound on the delays this model produces in normal
    /// operation, used by tests and to pick protocol parameters
    /// (`Δbnd`). Models without a hard bound return a high quantile.
    fn bound(&self) -> SimDuration;
}

impl DelayModel for Box<dyn DelayModel> {
    fn delay(&self, from: NodeIndex, to: NodeIndex, rng: &mut StdRng) -> SimDuration {
        (**self).delay(from, to, rng)
    }
    fn bound(&self) -> SimDuration {
        (**self).bound()
    }
}

/// The same fixed delay for every pair.
#[derive(Debug, Clone, Copy)]
pub struct FixedDelay(SimDuration);

impl FixedDelay {
    /// A model delivering every message after exactly `d`.
    pub fn new(d: SimDuration) -> FixedDelay {
        FixedDelay(d)
    }
}

impl DelayModel for FixedDelay {
    fn delay(&self, _from: NodeIndex, _to: NodeIndex, _rng: &mut StdRng) -> SimDuration {
        self.0
    }
    fn bound(&self) -> SimDuration {
        self.0
    }
}

/// Uniformly random delay in `[min, max]`, independent per message.
#[derive(Debug, Clone, Copy)]
pub struct UniformDelay {
    min: SimDuration,
    max: SimDuration,
}

impl UniformDelay {
    /// A model drawing each delay uniformly from `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: SimDuration, max: SimDuration) -> UniformDelay {
        assert!(min <= max, "min delay exceeds max delay");
        UniformDelay { min, max }
    }
}

impl DelayModel for UniformDelay {
    fn delay(&self, _from: NodeIndex, _to: NodeIndex, rng: &mut StdRng) -> SimDuration {
        SimDuration::from_micros(rng.gen_range(self.min.as_micros()..=self.max.as_micros()))
    }
    fn bound(&self) -> SimDuration {
        self.max
    }
}

/// An inter-datacenter delay model: each node is assigned to a data
/// center; one-way delay between two nodes is half the RTT between their
/// data centers plus small jitter. Intra-DC delay is sub-millisecond.
///
/// Matches the environment reported in §5: "ping RTT between nodes in
/// different data centers varies between 6 ms and 110 ms", at most three
/// nodes per data center.
#[derive(Debug, Clone)]
pub struct InterDcDelay {
    dc_of: Vec<usize>,
    /// Symmetric matrix of one-way inter-DC delays (µs).
    one_way: Vec<Vec<u64>>,
    jitter_us: u64,
    bound: SimDuration,
}

impl InterDcDelay {
    /// Maximum nodes co-located in one data center (paper §5: "at most
    /// three are located in the same data center").
    pub const MAX_PER_DC: usize = 3;

    /// Builds an internet-like topology for `n` nodes from a seed: data
    /// centers of up to three nodes, inter-DC RTTs drawn uniformly from
    /// 6–110 ms, 200 µs intra-DC one-way delay, ±10% jitter.
    pub fn internet_like(n: usize, seed: u64) -> InterDcDelay {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_dcs = n.div_ceil(Self::MAX_PER_DC);
        let dc_of: Vec<usize> = (0..n).map(|i| i % n_dcs).collect();
        let mut one_way = vec![vec![0u64; n_dcs]; n_dcs];
        #[allow(clippy::needless_range_loop)]
        for a in 0..n_dcs {
            for b in (a + 1)..n_dcs {
                // RTT uniform in [6ms, 110ms]; one-way is half.
                let rtt_us = rng.gen_range(6_000..=110_000u64);
                one_way[a][b] = rtt_us / 2;
                one_way[b][a] = rtt_us / 2;
            }
            one_way[a][a] = 200; // intra-DC
        }
        let max = one_way.iter().flatten().copied().max().unwrap_or(200);
        InterDcDelay {
            dc_of,
            one_way,
            jitter_us: max / 10,
            bound: SimDuration::from_micros(max + max / 10),
        }
    }

    /// The data center a node belongs to.
    pub fn dc_of(&self, node: NodeIndex) -> usize {
        self.dc_of[node.as_usize()]
    }
}

impl DelayModel for InterDcDelay {
    fn delay(&self, from: NodeIndex, to: NodeIndex, rng: &mut StdRng) -> SimDuration {
        let base = self.one_way[self.dc_of(from)][self.dc_of(to)];
        let jitter = if self.jitter_us > 0 {
            rng.gen_range(0..=self.jitter_us)
        } else {
            0
        };
        SimDuration::from_micros(base + jitter)
    }
    fn bound(&self) -> SimDuration {
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn fixed_delay_is_fixed() {
        let d = FixedDelay::new(SimDuration::from_millis(5));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                d.delay(NodeIndex::new(0), NodeIndex::new(1), &mut r),
                SimDuration::from_millis(5)
            );
        }
        assert_eq!(d.bound(), SimDuration::from_millis(5));
    }

    #[test]
    fn uniform_delay_within_range() {
        let d = UniformDelay::new(SimDuration::from_millis(2), SimDuration::from_millis(8));
        let mut r = rng();
        for _ in 0..100 {
            let v = d.delay(NodeIndex::new(0), NodeIndex::new(1), &mut r);
            assert!(v >= SimDuration::from_millis(2) && v <= SimDuration::from_millis(8));
        }
    }

    #[test]
    #[should_panic(expected = "min delay exceeds max")]
    fn uniform_rejects_inverted_range() {
        UniformDelay::new(SimDuration::from_millis(8), SimDuration::from_millis(2));
    }

    #[test]
    fn interdc_respects_paper_rtt_envelope() {
        let d = InterDcDelay::internet_like(40, 7);
        let mut r = rng();
        let mut max_seen = SimDuration::ZERO;
        for a in 0..40u32 {
            for b in 0..40u32 {
                let v = d.delay(NodeIndex::new(a), NodeIndex::new(b), &mut r);
                assert!(v <= d.bound(), "delay {v} above bound {}", d.bound());
                max_seen = max_seen.max(v);
                if d.dc_of(NodeIndex::new(a)) != d.dc_of(NodeIndex::new(b)) {
                    // One-way inter-DC >= 3ms (half of 6ms RTT).
                    assert!(
                        v >= SimDuration::from_millis(3),
                        "inter-DC delay too small: {v}"
                    );
                }
            }
        }
        // One-way below 55ms + 10% jitter.
        assert!(max_seen <= SimDuration::from_micros(60_500));
    }

    #[test]
    fn interdc_at_most_three_nodes_per_dc() {
        let d = InterDcDelay::internet_like(40, 3);
        let mut counts = std::collections::HashMap::new();
        for i in 0..40u32 {
            *counts.entry(d.dc_of(NodeIndex::new(i))).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= InterDcDelay::MAX_PER_DC));
    }

    #[test]
    fn interdc_deterministic_per_seed() {
        let a = InterDcDelay::internet_like(13, 9);
        let b = InterDcDelay::internet_like(13, 9);
        assert_eq!(a.bound(), b.bound());
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(
            a.delay(NodeIndex::new(1), NodeIndex::new(12), &mut r1),
            b.delay(NodeIndex::new(1), NodeIndex::new(12), &mut r2)
        );
    }
}
