//! Per-node traffic metering.
//!
//! Two conventions coexist, both from the paper:
//!
//! * **message complexity** (§1): "one party broadcasting a message
//!   contributes a term of n" — so [`NodeMetrics::sent_messages`]
//!   counts `n` per broadcast (including the self-copy);
//! * **sent traffic** (Table 1): bytes actually leaving the node's NIC —
//!   so [`NodeMetrics::sent_bytes`] counts `n − 1` copies per broadcast
//!   (no bytes for the self-copy).

use std::collections::BTreeMap;
use std::fmt;

/// A snapshot of one node's artifact-pool counters, sampled from the
/// consensus layer (the sim crate cannot see the pool type itself, so
/// the harness converts and pushes plain counters here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Signature verifications actually performed.
    pub verify_calls: u64,
    /// Verifications skipped because the artifact hash was cached.
    pub verify_cache_hits: u64,
    /// Artifacts dropped as exact duplicates before any verification.
    pub duplicates_dropped: u64,
    /// Artifacts evicted from the unvalidated section by per-peer quota.
    pub unvalidated_evictions: u64,
    /// Artifacts rejected (structural or failed verification).
    pub rejected: u64,
    /// RLC batch equations evaluated in the pool's ChangeSet step.
    pub batch_verifies: u64,
    /// Signature shares covered by those batch equations.
    pub batched_shares: u64,
}

impl PoolCounters {
    /// Adds `other`'s counters into `self` (for aggregate summaries).
    pub fn merge(&mut self, other: &PoolCounters) {
        self.verify_calls += other.verify_calls;
        self.verify_cache_hits += other.verify_cache_hits;
        self.duplicates_dropped += other.duplicates_dropped;
        self.unvalidated_evictions += other.unvalidated_evictions;
        self.rejected += other.rejected;
        self.batch_verifies += other.batch_verifies;
        self.batched_shares += other.batched_shares;
    }
}

impl fmt::Display for PoolCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} verifies ({} batched over {} shares), {} cache hits, {} dups dropped, {} evicted, {} rejected",
            self.verify_calls,
            self.batch_verifies,
            self.batched_shares,
            self.verify_cache_hits,
            self.duplicates_dropped,
            self.unvalidated_evictions,
            self.rejected
        )
    }
}

/// A snapshot of one node's crash-recovery counters, sampled from the
/// consensus layer (like [`PoolCounters`], the harness converts and
/// pushes plain numbers here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Times this node restarted after a crash.
    pub restarts: u64,
    /// Sum over restarts of how many rounds behind the node found
    /// itself (certified-package round − locally restored round).
    pub rounds_behind_total: u64,
    /// Certified catch-up packages verified and applied.
    pub catch_up_applied: u64,
    /// Catch-up packages rejected (forged certificate, broken beacon
    /// chain, or structurally inconsistent).
    pub catch_up_rejected: u64,
    /// Wire bytes of catch-up responses received (applied or not).
    pub catch_up_bytes: u64,
    /// Microseconds from first catch-up request to a package being
    /// applied, summed over catch-ups.
    pub catch_up_latency_us: u64,
    /// Entries appended to the write-ahead log.
    pub wal_appends: u64,
    /// Checkpoints taken (WAL compactions).
    pub checkpoints: u64,
}

impl RecoveryCounters {
    /// Adds `other`'s counters into `self` (for aggregate summaries).
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.restarts += other.restarts;
        self.rounds_behind_total += other.rounds_behind_total;
        self.catch_up_applied += other.catch_up_applied;
        self.catch_up_rejected += other.catch_up_rejected;
        self.catch_up_bytes += other.catch_up_bytes;
        self.catch_up_latency_us += other.catch_up_latency_us;
        self.wal_appends += other.wal_appends;
        self.checkpoints += other.checkpoints;
    }
}

impl fmt::Display for RecoveryCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} restarts ({} rounds behind), {} catch-ups applied, {} rejected, \
             {} catch-up bytes, {:.1} ms catch-up latency, {} WAL appends, {} checkpoints",
            self.restarts,
            self.rounds_behind_total,
            self.catch_up_applied,
            self.catch_up_rejected,
            self.catch_up_bytes,
            self.catch_up_latency_us as f64 / 1000.0,
            self.wal_appends,
            self.checkpoints
        )
    }
}

/// Counters for one node.
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// Messages sent, counting a broadcast as `n` (paper's message
    /// complexity convention).
    pub sent_messages: u64,
    /// Bytes sent over the network (a broadcast counts `n − 1` copies).
    pub sent_bytes: u64,
    /// Messages delivered to this node (excluding self-deliveries).
    pub recv_messages: u64,
    /// Bytes delivered to this node (excluding self-deliveries).
    pub recv_bytes: u64,
    /// Per-kind (messages, bytes) sent breakdown.
    pub sent_by_kind: BTreeMap<&'static str, (u64, u64)>,
    /// Latest artifact-pool counter snapshot for this node.
    pub pool: PoolCounters,
    /// Latest crash-recovery counter snapshot for this node.
    pub recovery: RecoveryCounters,
}

impl NodeMetrics {
    pub(crate) fn record_send(
        &mut self,
        kind: &'static str,
        copies_counted: u64,
        wire_copies: u64,
        bytes_each: usize,
    ) {
        self.sent_messages += copies_counted;
        let bytes = wire_copies * bytes_each as u64;
        self.sent_bytes += bytes;
        let e = self.sent_by_kind.entry(kind).or_insert((0, 0));
        e.0 += copies_counted;
        e.1 += bytes;
    }

    pub(crate) fn record_recv(&mut self, bytes: usize) {
        self.recv_messages += 1;
        self.recv_bytes += bytes as u64;
    }
}

/// Counters for a whole simulation.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    nodes: Vec<NodeMetrics>,
}

impl Metrics {
    pub(crate) fn new(n: usize) -> Metrics {
        Metrics {
            nodes: vec![NodeMetrics::default(); n],
        }
    }

    pub(crate) fn node_mut(&mut self, i: usize) -> &mut NodeMetrics {
        &mut self.nodes[i]
    }

    /// Per-node counters, indexed by node.
    pub fn per_node(&self) -> &[NodeMetrics] {
        &self.nodes
    }

    /// Total messages sent by all nodes (paper's per-round message
    /// complexity sums these over a round).
    pub fn total_messages(&self) -> u64 {
        self.nodes.iter().map(|m| m.sent_messages).sum()
    }

    /// Total bytes sent by all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().map(|m| m.sent_bytes).sum()
    }

    /// The maximum bytes sent by any single node — the *communication
    /// bottleneck* measure that \[35\] (and the paper's discussion of it)
    /// argues is what actually matters.
    pub fn max_node_bytes(&self) -> u64 {
        self.nodes.iter().map(|m| m.sent_bytes).max().unwrap_or(0)
    }

    /// Mean bytes sent per node.
    pub fn mean_node_bytes(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.nodes.len() as f64
        }
    }

    /// Stores `node`'s latest artifact-pool counter snapshot (pushed by
    /// the cluster harness, which can see the consensus cores).
    pub fn set_pool_counters(&mut self, node: usize, counters: PoolCounters) {
        if let Some(m) = self.nodes.get_mut(node) {
            m.pool = counters;
        }
    }

    /// Aggregate pool counters over all nodes.
    pub fn pool_totals(&self) -> PoolCounters {
        let mut total = PoolCounters::default();
        for m in &self.nodes {
            total.merge(&m.pool);
        }
        total
    }

    /// Stores `node`'s latest crash-recovery counter snapshot.
    pub fn set_recovery_counters(&mut self, node: usize, counters: RecoveryCounters) {
        if let Some(m) = self.nodes.get_mut(node) {
            m.recovery = counters;
        }
    }

    /// Aggregate recovery counters over all nodes.
    pub fn recovery_totals(&self) -> RecoveryCounters {
        let mut total = RecoveryCounters::default();
        for m in &self.nodes {
            total.merge(&m.recovery);
        }
        total
    }

    /// One-struct aggregate of everything an experiment usually prints.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            nodes: self.nodes.len(),
            total_messages: self.total_messages(),
            total_bytes: self.total_bytes(),
            max_node_bytes: self.max_node_bytes(),
            mean_node_bytes: self.mean_node_bytes(),
            pool: self.pool_totals(),
            recovery: self.recovery_totals(),
        }
    }
}

/// Aggregate counters over a whole run ([`Metrics::summary`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSummary {
    /// Number of nodes metered.
    pub nodes: usize,
    /// Total messages sent (message-complexity convention).
    pub total_messages: u64,
    /// Total bytes sent on the wire.
    pub total_bytes: u64,
    /// Bytes sent by the busiest node (the bottleneck measure).
    pub max_node_bytes: u64,
    /// Mean bytes sent per node.
    pub mean_node_bytes: f64,
    /// Pool counters summed over all nodes.
    pub pool: PoolCounters,
    /// Recovery counters summed over all nodes.
    pub recovery: RecoveryCounters,
}

impl fmt::Display for MetricsSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} nodes: {} msgs, {} bytes total, max/node {} bytes, mean/node {:.0} bytes",
            self.nodes,
            self.total_messages,
            self.total_bytes,
            self.max_node_bytes,
            self.mean_node_bytes
        )?;
        writeln!(f, "pool: {}", self.pool)?;
        write!(f, "recovery: {}", self.recovery)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "metrics: {} msgs, {} bytes total, max/node {} bytes",
            self.total_messages(),
            self.total_bytes(),
            self.max_node_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_accounting() {
        let mut m = Metrics::new(3);
        // Node 0 broadcasts a 100-byte message to 3 nodes (2 wire copies).
        m.node_mut(0).record_send("proposal", 3, 2, 100);
        m.node_mut(1).record_recv(100);
        m.node_mut(2).record_recv(100);
        assert_eq!(m.per_node()[0].sent_messages, 3);
        assert_eq!(m.per_node()[0].sent_bytes, 200);
        assert_eq!(m.per_node()[1].recv_messages, 1);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_bytes(), 200);
        assert_eq!(m.max_node_bytes(), 200);
        assert!((m.mean_node_bytes() - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.per_node()[0].sent_by_kind["proposal"], (3, 200));
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::default();
        assert_eq!(m.max_node_bytes(), 0);
        assert_eq!(m.mean_node_bytes(), 0.0);
    }

    #[test]
    fn pool_counters_aggregate_in_summary() {
        let mut m = Metrics::new(2);
        m.set_pool_counters(
            0,
            PoolCounters {
                verify_calls: 10,
                verify_cache_hits: 4,
                duplicates_dropped: 3,
                unvalidated_evictions: 1,
                rejected: 2,
                batch_verifies: 2,
                batched_shares: 8,
            },
        );
        m.set_pool_counters(
            1,
            PoolCounters {
                verify_calls: 5,
                verify_cache_hits: 1,
                duplicates_dropped: 0,
                unvalidated_evictions: 0,
                rejected: 0,
                batch_verifies: 1,
                batched_shares: 3,
            },
        );
        // Out-of-range node indices are ignored, not a panic.
        m.set_pool_counters(9, PoolCounters::default());
        let s = m.summary();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.pool.verify_calls, 15);
        assert_eq!(s.pool.verify_cache_hits, 5);
        assert_eq!(s.pool.duplicates_dropped, 3);
        assert_eq!(s.pool.unvalidated_evictions, 1);
        assert_eq!(s.pool.rejected, 2);
        let text = s.to_string();
        assert!(text.contains("15 verifies"), "{text}");
        assert!(text.contains("5 cache hits"), "{text}");
    }
}
