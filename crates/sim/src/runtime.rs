//! The shared real-time driver: one event loop, pluggable transports.
//!
//! The discrete-event engine ([`crate::engine`]) owns virtual time and
//! drives [`Node`]s directly. Everything that runs on the *wall clock* —
//! the threaded channel backend in [`crate::live`] and the TCP mesh in
//! `icc-net` — shares the single loop in [`drive`]: deliver events from
//! a [`Transport`], fire due timers from a local heap, and drain the
//! node's queued [`Context`] actions back into the transport. The node
//! cannot tell the backends apart; that is the point. Before this module
//! existed the loop was written twice (once in `live`, once ad hoc), and
//! the two copies had already begun to diverge.
//!
//! A [`Transport`] is deliberately tiny: an inbox (`recv`) and an outbox
//! (`send`/`broadcast`) of typed messages among `n` statically-indexed
//! peers, plus an optional peer-liveness snapshot. Delivery is
//! best-effort and unordered across peers (in-order per peer in
//! practice for both backends); the protocols are designed for exactly
//! that network model.

use crate::engine::OutputRecord;
use crate::node::{Action, Context, Node};
use icc_types::{NodeIndex, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// An event a transport delivers into the driver loop.
#[derive(Debug)]
pub enum TransportEvent<M, X> {
    /// A protocol message from a peer (or from this node itself — the
    /// broadcast primitive includes self-delivery).
    Msg {
        /// Originating node.
        from: NodeIndex,
        /// The message.
        msg: M,
    },
    /// An external input injected by the harness (client commands).
    External(X),
    /// Orderly shutdown: the driver returns after processing this.
    Stop,
}

/// Why [`Transport::recv`] returned without an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No event arrived within the timeout; the driver uses this to
    /// fire due timers and poll again.
    Timeout,
    /// The event source is gone (every sender dropped, socket layer shut
    /// down). The driver treats this like [`TransportEvent::Stop`].
    Closed,
}

/// A wall-clock message substrate connecting `n` statically-indexed
/// nodes.
///
/// Implementations: [`ChannelTransport`](crate::live::ChannelTransport)
/// (in-process crossbeam channels) and `icc_net::TcpTransport` (real
/// kernel sockets). Both drive the identical [`drive`] loop.
pub trait Transport {
    /// Message type carried between peers.
    type Msg: Clone;
    /// External-input type injected by the harness.
    type External;

    /// This endpoint's node index.
    fn me(&self) -> NodeIndex;

    /// Total number of nodes in the cluster.
    fn n(&self) -> usize;

    /// Queues `msg` for delivery to `to` (best-effort: a down or
    /// backpressured peer may never receive it).
    fn send(&mut self, to: NodeIndex, msg: Self::Msg);

    /// Delivers `msg` to **all** nodes including this one (the paper's
    /// broadcast primitive: a party's pool holds messages received from
    /// all parties *including itself*). The default loops over
    /// [`send`](Transport::send); transports with a cheaper fan-out
    /// (encode-once, shared buffers) override it.
    fn broadcast(&mut self, msg: Self::Msg) {
        for i in 0..self.n() {
            self.send(NodeIndex::new(i as u32), msg.clone());
        }
    }

    /// Blocks up to `timeout` for the next inbound event.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when nothing arrived (normal; the driver
    /// polls timers and retries), [`RecvError::Closed`] when no further
    /// event can ever arrive.
    fn recv(
        &mut self,
        timeout: Duration,
    ) -> Result<TransportEvent<Self::Msg, Self::External>, RecvError>;

    /// Fills `alive[i]` with whether peer `i` looks reachable, returning
    /// `true` if this transport tracks liveness at all. The default
    /// tracks nothing (channel backends cannot see peer health), which
    /// makes [`Context::peer_up`] report every peer as up — matching the
    /// pre-refactor live loop.
    fn snapshot_alive(&self, alive: &mut [bool]) -> bool {
        let _ = alive;
        false
    }
}

/// Runs `node` on `transport` until a [`TransportEvent::Stop`] arrives
/// (or the transport closes), then returns the node for post-mortem
/// inspection. `start` anchors the node-visible clock: handlers see
/// `SimTime` = microseconds elapsed since `start`, so all nodes driven
/// from the same `Instant` share a clock base. Outputs are passed to
/// `emit` as they happen, stamped with that clock.
///
/// This is the whole wall-clock event loop — `run_live` threads and
/// `icc-net` replicas both funnel through here, and the discrete-event
/// engine mirrors the same action semantics in virtual time.
pub fn drive<N, T>(
    mut node: N,
    mut transport: T,
    start: Instant,
    mut emit: impl FnMut(OutputRecord<N::Output>),
) -> N
where
    N: Node,
    T: Transport<Msg = N::Msg, External = N::External>,
{
    let me = transport.me();
    let n = transport.n();
    let mut timers: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut actions: Vec<Action<N::Msg, N::Output>> = Vec::new();
    let mut alive_buf = vec![true; n];
    let now_sim = |start: Instant| SimTime::from_micros(start.elapsed().as_micros() as u64);

    // One handler dispatch: build a fresh Context (with a liveness view
    // if the transport has one) and run `f` in it.
    macro_rules! dispatch {
        ($f:expr) => {{
            let tracked = transport.snapshot_alive(&mut alive_buf);
            let mut ctx = Context {
                me,
                n,
                now: now_sim(start),
                alive: if tracked { Some(&alive_buf[..]) } else { None },
                actions: &mut actions,
            };
            #[allow(clippy::redundant_closure_call)]
            $f(&mut node, &mut ctx);
        }};
    }

    dispatch!(|node: &mut N, ctx: &mut Context<'_, N::Msg, N::Output>| node.on_start(ctx));
    loop {
        // Drain actions queued by the previous handler.
        for action in actions.drain(..) {
            match action {
                Action::Broadcast(msg) => transport.broadcast(msg),
                Action::Send(to, msg) => transport.send(to, msg),
                Action::SetTimer { after, tag } => {
                    timers.push(Reverse((
                        Instant::now() + Duration::from_micros(after.as_micros()),
                        tag,
                    )));
                }
                Action::Output(output) => emit(OutputRecord {
                    at: now_sim(start),
                    node: me,
                    output,
                }),
            }
        }
        // Fire due timers before blocking again.
        let now = Instant::now();
        if let Some(Reverse((deadline, tag))) = timers.peek().copied() {
            if deadline <= now {
                timers.pop();
                dispatch!(|node: &mut N, ctx: &mut Context<'_, N::Msg, N::Output>| {
                    node.on_timer(ctx, tag)
                });
                continue;
            }
        }
        // Wait for the next event or the next timer deadline.
        let timeout = timers
            .peek()
            .map(|Reverse((d, _))| d.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50));
        match transport.recv(timeout) {
            Ok(TransportEvent::Msg { from, msg }) => {
                dispatch!(|node: &mut N, ctx: &mut Context<'_, N::Msg, N::Output>| {
                    node.on_message(ctx, from, msg)
                });
            }
            Ok(TransportEvent::External(input)) => {
                dispatch!(|node: &mut N, ctx: &mut Context<'_, N::Msg, N::Output>| {
                    node.on_external(ctx, input)
                });
            }
            Ok(TransportEvent::Stop) | Err(RecvError::Closed) => break,
            Err(RecvError::Timeout) => {} // loop fires timers
        }
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use icc_types::SimDuration;
    use std::collections::VecDeque;

    /// A scripted single-node transport: pre-loaded events in, sent
    /// messages recorded out. Once the script is exhausted it honours
    /// `timeouts_left` waits (sleeping the requested timeout, so pending
    /// driver timers come due) and then reports `Closed`.
    struct Script {
        events: VecDeque<TransportEvent<u32, u32>>,
        sent: Vec<(NodeIndex, u32)>,
        alive: Option<Vec<bool>>,
        timeouts_left: usize,
    }

    impl Transport for Script {
        type Msg = u32;
        type External = u32;
        fn me(&self) -> NodeIndex {
            NodeIndex::new(0)
        }
        fn n(&self) -> usize {
            3
        }
        fn send(&mut self, to: NodeIndex, msg: u32) {
            self.sent.push((to, msg));
        }
        fn recv(&mut self, timeout: Duration) -> Result<TransportEvent<u32, u32>, RecvError> {
            if let Some(e) = self.events.pop_front() {
                return Ok(e);
            }
            if self.timeouts_left > 0 {
                self.timeouts_left -= 1;
                std::thread::sleep(timeout.min(Duration::from_millis(20)));
                return Err(RecvError::Timeout);
            }
            Err(RecvError::Closed)
        }
        fn snapshot_alive(&self, alive: &mut [bool]) -> bool {
            match &self.alive {
                Some(v) => {
                    alive.copy_from_slice(v);
                    true
                }
                None => false,
            }
        }
    }

    /// Echoes messages as outputs; broadcasts externals; sets a timer at
    /// start and outputs 1000+tag when it fires; records peer 2's
    /// liveness view into outputs as 2000/2001.
    struct Echo;
    impl Node for Echo {
        type Msg = u32;
        type External = u32;
        type Output = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32, u32>) {
            ctx.set_timer(SimDuration::from_millis(1), 7);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32, u32>, _from: NodeIndex, msg: u32) {
            ctx.output(msg);
            ctx.output(if ctx.peer_up(NodeIndex::new(2)) {
                2001
            } else {
                2000
            });
        }
        fn on_external(&mut self, ctx: &mut Context<'_, u32, u32>, input: u32) {
            ctx.broadcast(input);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u32, u32>, tag: u64) {
            ctx.output(1000 + tag as u32);
        }
    }

    #[test]
    fn drive_dispatches_all_event_kinds() {
        let mut events = VecDeque::new();
        events.push_back(TransportEvent::Msg {
            from: NodeIndex::new(1),
            msg: 5,
        });
        events.push_back(TransportEvent::External(9));
        let t = Script {
            events,
            sent: Vec::new(),
            alive: None,
            // Enough timeout waits for the 1 ms timer to come due; the
            // exhausted script then closes, ending the drive.
            timeouts_left: 3,
        };
        let mut outputs = Vec::new();
        drive(Echo, t, Instant::now(), |o| outputs.push(o.output));
        // Msg 5 echoed; liveness untracked so peer reads as up; timer fires.
        assert!(outputs.contains(&5));
        assert!(outputs.contains(&2001));
        assert!(outputs.contains(&1007));
    }

    #[test]
    fn drive_default_broadcast_includes_self() {
        let mut events = VecDeque::new();
        events.push_back(TransportEvent::External(42));
        events.push_back(TransportEvent::Stop);
        let t = Script {
            events,
            sent: Vec::new(),
            alive: None,
            timeouts_left: 0,
        };
        // Capture the transport's send log by threading it back out via
        // a scripted drop: run drive and inspect via the returned node is
        // not possible for the transport, so use a wrapper.
        struct Probe(
            Script,
            std::sync::Arc<std::sync::Mutex<Vec<(NodeIndex, u32)>>>,
        );
        impl Transport for Probe {
            type Msg = u32;
            type External = u32;
            fn me(&self) -> NodeIndex {
                self.0.me()
            }
            fn n(&self) -> usize {
                self.0.n()
            }
            fn send(&mut self, to: NodeIndex, msg: u32) {
                self.1.lock().unwrap().push((to, msg));
            }
            fn recv(&mut self, t: Duration) -> Result<TransportEvent<u32, u32>, RecvError> {
                self.0.recv(t)
            }
        }
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        drive(Echo, Probe(t, log.clone()), Instant::now(), |_| {});
        let sent = log.lock().unwrap();
        // Default broadcast fans out to all n = 3 nodes, self included.
        let targets: Vec<u32> = sent.iter().map(|(to, _)| to.get()).collect();
        assert_eq!(targets, vec![0, 1, 2]);
        assert!(sent.iter().all(|&(_, m)| m == 42));
    }

    #[test]
    fn drive_passes_liveness_view_through() {
        let mut events = VecDeque::new();
        events.push_back(TransportEvent::Msg {
            from: NodeIndex::new(1),
            msg: 1,
        });
        events.push_back(TransportEvent::Stop);
        let t = Script {
            events,
            sent: Vec::new(),
            alive: Some(vec![true, true, false]), // peer 2 down
            timeouts_left: 0,
        };
        let mut outputs = Vec::new();
        drive(Echo, t, Instant::now(), |o| outputs.push(o.output));
        assert!(outputs.contains(&2000), "peer 2 should read as down");
    }
}
