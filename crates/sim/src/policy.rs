//! Delivery policies: schedule manipulation layered on the delay model.
//!
//! The paper's analysis distinguishes *synchronous* rounds (all honest
//! messages delivered within `δ`) from *asynchronous* ones (the
//! adversary schedules delivery arbitrarily, subject only to eventual
//! delivery). Policies let experiments inject exactly those conditions:
//! network partitions that heal, bounded asynchronous windows, and
//! targeted slow links — all without touching protocol code.
//!
//! Each policy sees a tentative delivery time and may *postpone* it
//! (never accelerate — the underlying delay is the physical minimum).

use icc_types::{NodeIndex, SimDuration, SimTime};

/// A hook that may postpone the delivery of a message.
pub trait DeliveryPolicy {
    /// Given a message sent at `sent` from `from` to `to` that would be
    /// delivered at `tentative`, returns the (possibly later) actual
    /// delivery time.
    fn deliver_at(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        sent: SimTime,
        tentative: SimTime,
    ) -> SimTime;
}

impl DeliveryPolicy for Box<dyn DeliveryPolicy> {
    fn deliver_at(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        sent: SimTime,
        tentative: SimTime,
    ) -> SimTime {
        (**self).deliver_at(from, to, sent, tentative)
    }
}

/// A network partition active during a window: messages crossing the cut
/// are held until the partition heals (plus the residual propagation
/// time they had left). Messages within a side flow normally.
///
/// Eventual delivery — the paper's standing assumption — is preserved:
/// nothing is dropped.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive); messages crossing the cut are released
    /// at this time.
    pub until: SimTime,
    /// One side of the cut; everyone else is on the other side.
    pub group_a: Vec<NodeIndex>,
}

impl Partition {
    fn crosses_cut(&self, a: NodeIndex, b: NodeIndex) -> bool {
        self.group_a.contains(&a) != self.group_a.contains(&b)
    }
}

impl DeliveryPolicy for Partition {
    fn deliver_at(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        sent: SimTime,
        tentative: SimTime,
    ) -> SimTime {
        if sent >= self.from && sent < self.until && self.crosses_cut(from, to) {
            // Hold at the cut; propagate after healing.
            let residual = tentative.saturating_since(sent);
            self.until + residual
        } else {
            tentative
        }
    }
}

/// An asynchronous window: during `[from, until)` every message is
/// delayed so it arrives no earlier than `until` plus its residual
/// propagation time — modeling an adversary exercising its full
/// scheduling power for a bounded period.
#[derive(Debug, Clone)]
pub struct AsyncWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl DeliveryPolicy for AsyncWindow {
    fn deliver_at(
        &mut self,
        _from: NodeIndex,
        _to: NodeIndex,
        sent: SimTime,
        tentative: SimTime,
    ) -> SimTime {
        if sent >= self.from && sent < self.until {
            let residual = tentative.saturating_since(sent);
            self.until + residual
        } else {
            tentative
        }
    }
}

/// Adds a constant extra delay to every message sent *by* or *to* the
/// given nodes — a targeted slow link (e.g. a leader behind a congested
/// uplink).
#[derive(Debug, Clone)]
pub struct SlowNodes {
    /// The affected nodes.
    pub nodes: Vec<NodeIndex>,
    /// Extra one-way delay applied per affected endpoint.
    pub extra: SimDuration,
}

impl DeliveryPolicy for SlowNodes {
    fn deliver_at(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        _sent: SimTime,
        tentative: SimTime,
    ) -> SimTime {
        let mut t = tentative;
        if self.nodes.contains(&from) {
            t += self.extra;
        }
        if self.nodes.contains(&to) {
            t += self.extra;
        }
        t
    }
}

/// Adds a constant extra delay to specific **directed** links only —
/// unlike [`SlowNodes`], which slows every message touching a node in
/// either direction. Directional control is what scripted telemetry
/// scenarios need: "node 1's shares reach node 0 late" without also
/// delaying what node 0 sends back.
#[derive(Debug, Clone)]
pub struct SlowLinks {
    /// The affected `(from, to)` links.
    pub links: Vec<(NodeIndex, NodeIndex)>,
    /// Extra one-way delay applied per affected link.
    pub extra: SimDuration,
}

impl DeliveryPolicy for SlowLinks {
    fn deliver_at(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        _sent: SimTime,
        tentative: SimTime,
    ) -> SimTime {
        if self.links.contains(&(from, to)) {
            tentative + self.extra
        } else {
            tentative
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn partition_holds_cross_cut_messages() {
        let mut p = Partition {
            from: t(10),
            until: t(50),
            group_a: vec![NodeIndex::new(0), NodeIndex::new(1)],
        };
        // Cross-cut during window: held until heal + residual 5ms.
        assert_eq!(
            p.deliver_at(NodeIndex::new(0), NodeIndex::new(2), t(20), t(25)),
            t(55)
        );
        // Same side during window: unaffected.
        assert_eq!(
            p.deliver_at(NodeIndex::new(0), NodeIndex::new(1), t(20), t(25)),
            t(25)
        );
        // Cross-cut before window: unaffected.
        assert_eq!(
            p.deliver_at(NodeIndex::new(0), NodeIndex::new(2), t(5), t(9)),
            t(9)
        );
        // Cross-cut after window: unaffected.
        assert_eq!(
            p.deliver_at(NodeIndex::new(0), NodeIndex::new(2), t(50), t(55)),
            t(55)
        );
    }

    #[test]
    fn async_window_postpones_everything_inside() {
        let mut w = AsyncWindow {
            from: t(100),
            until: t(200),
        };
        assert_eq!(
            w.deliver_at(NodeIndex::new(0), NodeIndex::new(1), t(150), t(160)),
            t(210)
        );
        assert_eq!(
            w.deliver_at(NodeIndex::new(0), NodeIndex::new(1), t(90), t(95)),
            t(95)
        );
    }

    #[test]
    fn slow_nodes_charge_each_affected_endpoint() {
        let mut s = SlowNodes {
            nodes: vec![NodeIndex::new(3)],
            extra: SimDuration::from_millis(7),
        };
        assert_eq!(
            s.deliver_at(NodeIndex::new(3), NodeIndex::new(1), t(0), t(10)),
            t(17)
        );
        assert_eq!(
            s.deliver_at(NodeIndex::new(1), NodeIndex::new(3), t(0), t(10)),
            t(17)
        );
        assert_eq!(
            s.deliver_at(NodeIndex::new(3), NodeIndex::new(3), t(0), t(10)),
            t(24)
        );
        assert_eq!(
            s.deliver_at(NodeIndex::new(1), NodeIndex::new(2), t(0), t(10)),
            t(10)
        );
    }

    #[test]
    fn slow_links_are_directional() {
        let mut s = SlowLinks {
            links: vec![(NodeIndex::new(1), NodeIndex::new(0))],
            extra: SimDuration::from_millis(30),
        };
        // The configured direction is delayed…
        assert_eq!(
            s.deliver_at(NodeIndex::new(1), NodeIndex::new(0), t(0), t(10)),
            t(40)
        );
        // …the reverse direction is not…
        assert_eq!(
            s.deliver_at(NodeIndex::new(0), NodeIndex::new(1), t(0), t(10)),
            t(10)
        );
        // …and unrelated links are untouched.
        assert_eq!(
            s.deliver_at(NodeIndex::new(2), NodeIndex::new(0), t(0), t(10)),
            t(10)
        );
    }
}
