//! The discrete-event loop.
//!
//! [`Simulation`] owns the nodes, a virtual clock, and a priority queue
//! of pending events (message deliveries, timers, external inputs).
//! Executions are fully determined by the seed, the node logic, and the
//! configured delay model / policies.

use crate::delay::{DelayModel, FixedDelay};
use crate::fault::{FaultPlan, LifecycleEvent};
use crate::metrics::Metrics;
use crate::node::{Action, Context, Node, WireMessage};
use crate::policy::DeliveryPolicy;
use icc_telemetry::{FlightRecorder, SpanEvent, SpanKind};
use icc_types::{NodeIndex, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

enum EventKind<M, X> {
    Deliver {
        to: NodeIndex,
        from: NodeIndex,
        msg: M,
        /// Whether the copy traversed the network (false for the
        /// self-copy of a broadcast) — controls receive metering.
        on_wire: bool,
    },
    Timer {
        node: NodeIndex,
        tag: u64,
    },
    External {
        node: NodeIndex,
        input: X,
    },
    /// A fault-plan lifecycle transition: `up = false` crashes the node
    /// (subsequent events addressed to it are dropped), `up = true`
    /// restarts it (`on_restart` runs).
    Lifecycle {
        node: NodeIndex,
        up: bool,
    },
    /// A fault-plan departure: the node leaves the membership — it goes
    /// down like a crash and every other live node gets an
    /// `on_peer_departed` call (in index order).
    Depart {
        node: NodeIndex,
    },
}

struct QueuedEvent<M, X> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M, X>,
}

impl<M, X> PartialEq for QueuedEvent<M, X> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M, X> Eq for QueuedEvent<M, X> {}
impl<M, X> PartialOrd for QueuedEvent<M, X> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M, X> Ord for QueuedEvent<M, X> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One emitted output, stamped with the emitting node and time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRecord<O> {
    /// When the output was emitted.
    pub at: SimTime,
    /// The emitting node.
    pub node: NodeIndex,
    /// The output value.
    pub output: O,
}

/// Configures and constructs a [`Simulation`].
pub struct SimulationBuilder {
    seed: u64,
    delay: Box<dyn DelayModel>,
    policies: Vec<Box<dyn DeliveryPolicy>>,
    loss_prob: f64,
    rto: SimDuration,
    max_events: u64,
    fault_plan: FaultPlan,
}

impl SimulationBuilder {
    /// Starts a builder with the given RNG seed, a fixed 10 ms delay
    /// model, no loss, and no policies.
    pub fn new(seed: u64) -> SimulationBuilder {
        SimulationBuilder {
            seed,
            delay: Box::new(FixedDelay::new(SimDuration::from_millis(10))),
            policies: Vec::new(),
            loss_prob: 0.0,
            rto: SimDuration::from_millis(200),
            max_events: 500_000_000,
            fault_plan: FaultPlan::new(),
        }
    }

    /// Sets the network delay model.
    pub fn delay(mut self, model: impl DelayModel + 'static) -> Self {
        self.delay = Box::new(model);
        self
    }

    /// Sets the per-message loss probability and the retransmission
    /// timeout. Loss is modeled as extra delay (geometric number of
    /// retransmissions), preserving the paper's eventual-delivery
    /// assumption.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn loss(mut self, p: f64, rto: SimDuration) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1)"
        );
        self.loss_prob = p;
        self.rto = rto;
        self
    }

    /// Appends a delivery policy (applied in insertion order).
    pub fn policy(mut self, p: impl DeliveryPolicy + 'static) -> Self {
        self.policies.push(Box::new(p));
        self
    }

    /// Caps the number of events processed (a runaway-loop backstop).
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Installs a [`FaultPlan`] of scheduled crashes and restarts.
    ///
    /// A node scheduled down at time zero starts dead: its `on_start`
    /// never runs and everything addressed to it is dropped until (if
    /// ever) the plan brings it up.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builds the simulation over the given nodes and runs each node's
    /// `on_start` at time zero.
    pub fn build<N: Node>(self, nodes: Vec<N>) -> Simulation<N> {
        let n = nodes.len();
        let mut sim = Simulation {
            nodes,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(self.seed),
            delay: self.delay,
            policies: self.policies,
            loss_prob: self.loss_prob,
            rto: self.rto,
            alive: vec![true; n],
            metrics: Metrics::new(n),
            recorder: FlightRecorder::with_capacity(icc_telemetry::recorder::DEFAULT_CAPACITY),
            outputs: Vec::new(),
            events_processed: 0,
            max_events: self.max_events,
        };
        // Down events at time zero take effect before `on_start`: the
        // node begins the execution dead (the degenerate crash fault).
        // Everything else in the plan becomes a queued lifecycle event.
        for (at, node, ev) in self.fault_plan.into_events() {
            if at == SimTime::ZERO && ev == LifecycleEvent::Down {
                sim.alive[node.as_usize()] = false;
            } else if ev == LifecycleEvent::Depart {
                sim.push(at, EventKind::Depart { node });
            } else {
                sim.push(
                    at,
                    EventKind::Lifecycle {
                        node,
                        up: ev == LifecycleEvent::Up,
                    },
                );
            }
        }
        let mut actions = Vec::new();
        for i in 0..n {
            if !sim.alive[i] {
                continue;
            }
            let me = NodeIndex::new(i as u32);
            let mut ctx = Context {
                me,
                n,
                now: sim.now,
                alive: Some(&sim.alive),
                actions: &mut actions,
            };
            sim.nodes[i].on_start(&mut ctx);
            sim.apply_actions(me, &mut actions);
        }
        sim
    }
}

/// A running simulation of `N` nodes.
pub struct Simulation<N: Node> {
    nodes: Vec<N>,
    now: SimTime,
    queue: BinaryHeap<Reverse<QueuedEvent<N::Msg, N::External>>>,
    seq: u64,
    rng: StdRng,
    delay: Box<dyn DelayModel>,
    policies: Vec<Box<dyn DeliveryPolicy>>,
    loss_prob: f64,
    rto: SimDuration,
    alive: Vec<bool>,
    metrics: Metrics,
    /// Engine-level flight recorder: node lifecycle (crash/restart)
    /// span events, stamped with sim time. Consensus-phase events live
    /// in the nodes' own recorders; harnesses merge both streams.
    recorder: FlightRecorder,
    outputs: Vec<OutputRecord<N::Output>>,
    events_processed: u64,
    max_events: u64,
}

impl<N: Node> Simulation<N> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node's state (for assertions).
    pub fn node(&self, i: usize) -> &N {
        &self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Accumulated traffic metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access, for harnesses that push node-level
    /// counters sampled outside the engine (e.g. artifact-pool stats).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Resets traffic metrics (e.g. after a warm-up period, so a
    /// measurement window starts clean). Also clears the engine-level
    /// flight recorder.
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new(self.nodes.len());
        self.recorder.clear();
    }

    /// Engine-level flight-recorder events (node lifecycle
    /// transitions), oldest first.
    pub fn engine_events(&self) -> Vec<SpanEvent> {
        self.recorder.events()
    }

    /// Outputs emitted so far, in emission order.
    pub fn outputs(&self) -> &[OutputRecord<N::Output>] {
        &self.outputs
    }

    /// Removes and returns all outputs emitted so far.
    pub fn take_outputs(&mut self) -> Vec<OutputRecord<N::Output>> {
        std::mem::take(&mut self.outputs)
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Schedules an external input for `node` at absolute time `at`
    /// (clamped to the current time if in the past).
    pub fn schedule_external(&mut self, at: SimTime, node: NodeIndex, input: N::External) {
        let at = at.max(self.now);
        self.push(at, EventKind::External { node, input });
    }

    /// Whether `node` is currently up (not crashed by the fault plan).
    pub fn is_alive(&self, node: NodeIndex) -> bool {
        self.alive.get(node.as_usize()).copied().unwrap_or(false)
    }

    /// Schedules a crash of `node` at absolute time `at` (clamped to
    /// now), equivalent to a [`FaultPlan`] entry installed at build
    /// time.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeIndex) {
        let at = at.max(self.now);
        self.push(at, EventKind::Lifecycle { node, up: false });
    }

    /// Schedules a restart of `node` at absolute time `at` (clamped to
    /// now).
    pub fn schedule_restart(&mut self, at: SimTime, node: NodeIndex) {
        let at = at.max(self.now);
        self.push(at, EventKind::Lifecycle { node, up: true });
    }

    /// Schedules a membership departure of `node` at absolute time `at`
    /// (clamped to now), equivalent to
    /// [`FaultPlan::depart_at`](crate::FaultPlan::depart_at).
    pub fn schedule_depart(&mut self, at: SimTime, node: NodeIndex) {
        let at = at.max(self.now);
        self.push(at, EventKind::Depart { node });
    }

    /// Processes the single next event. Returns its time, or `None` if
    /// the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if the configured `max_events` cap is exceeded — that
    /// indicates a protocol livelock or a missing stop condition in the
    /// harness.
    pub fn step(&mut self) -> Option<SimTime> {
        let Reverse(event) = self.queue.pop()?;
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.max_events,
            "simulation exceeded {} events — livelock or missing deadline",
            self.max_events
        );
        debug_assert!(event.at >= self.now, "time went backwards");
        self.now = event.at;
        let mut actions = Vec::new();
        match event.kind {
            EventKind::Deliver {
                to,
                from,
                msg,
                on_wire,
            } => {
                // A crashed process loses traffic addressed to it: the
                // message is neither metered nor handled. (Unlike the
                // partition policies, which only *delay*, a crash really
                // drops — the node must recover the information through
                // a catch-up protocol after restarting.)
                if !self.alive[to.as_usize()] {
                    return Some(self.now);
                }
                if on_wire {
                    self.metrics
                        .node_mut(to.as_usize())
                        .record_recv(msg.wire_bytes());
                }
                let mut ctx = Context {
                    me: to,
                    n: self.nodes.len(),
                    now: self.now,
                    alive: Some(&self.alive),
                    actions: &mut actions,
                };
                self.nodes[to.as_usize()].on_message(&mut ctx, from, msg);
                self.apply_actions(to, &mut actions);
            }
            EventKind::Timer { node, tag } => {
                // Timers die with the process that set them.
                if !self.alive[node.as_usize()] {
                    return Some(self.now);
                }
                let mut ctx = Context {
                    me: node,
                    n: self.nodes.len(),
                    now: self.now,
                    alive: Some(&self.alive),
                    actions: &mut actions,
                };
                self.nodes[node.as_usize()].on_timer(&mut ctx, tag);
                self.apply_actions(node, &mut actions);
            }
            EventKind::External { node, input } => {
                if !self.alive[node.as_usize()] {
                    return Some(self.now);
                }
                let mut ctx = Context {
                    me: node,
                    n: self.nodes.len(),
                    now: self.now,
                    alive: Some(&self.alive),
                    actions: &mut actions,
                };
                self.nodes[node.as_usize()].on_external(&mut ctx, input);
                self.apply_actions(node, &mut actions);
            }
            EventKind::Lifecycle { node, up } => {
                let i = node.as_usize();
                if up {
                    if !self.alive[i] {
                        self.alive[i] = true;
                        self.recorder.record(SpanEvent {
                            at_us: self.now.as_micros(),
                            node: node.get(),
                            round: 0,
                            kind: SpanKind::NodeUp,
                        });
                        let mut ctx = Context {
                            me: node,
                            n: self.nodes.len(),
                            now: self.now,
                            alive: Some(&self.alive),
                            actions: &mut actions,
                        };
                        self.nodes[i].on_restart(&mut ctx);
                        self.apply_actions(node, &mut actions);
                    }
                } else if self.alive[i] {
                    self.alive[i] = false;
                    self.recorder.record(SpanEvent {
                        at_us: self.now.as_micros(),
                        node: node.get(),
                        round: 0,
                        kind: SpanKind::NodeDown,
                    });
                    self.nodes[i].on_crash();
                }
            }
            EventKind::Depart { node } => {
                let i = node.as_usize();
                if self.alive[i] {
                    self.alive[i] = false;
                    self.recorder.record(SpanEvent {
                        at_us: self.now.as_micros(),
                        node: node.get(),
                        round: 0,
                        kind: SpanKind::NodeDown,
                    });
                    self.nodes[i].on_crash();
                }
                // Survivors evict the departed peer, in index order.
                for j in 0..self.nodes.len() {
                    if j == i || !self.alive[j] {
                        continue;
                    }
                    let me = NodeIndex::new(j as u32);
                    let mut ctx = Context {
                        me,
                        n: self.nodes.len(),
                        now: self.now,
                        alive: Some(&self.alive),
                        actions: &mut actions,
                    };
                    self.nodes[j].on_peer_departed(&mut ctx, node);
                    self.apply_actions(me, &mut actions);
                }
            }
        }
        Some(self.now)
    }

    /// Processes events up to and including time `deadline`, then sets
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.next_event_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until no events remain. Only terminates for protocols that
    /// quiesce; consensus nodes generally do not — use [`run_until`].
    ///
    /// [`run_until`]: Simulation::run_until
    pub fn run_until_idle(&mut self) {
        while self.step().is_some() {}
    }

    fn push(&mut self, at: SimTime, kind: EventKind<N::Msg, N::External>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, kind }));
    }

    fn delivery_time(&mut self, from: NodeIndex, to: NodeIndex) -> SimTime {
        let base = self.delay.delay(from, to, &mut self.rng);
        let mut extra = SimDuration::ZERO;
        if self.loss_prob > 0.0 {
            while self.rng.gen::<f64>() < self.loss_prob {
                extra += self.rto;
            }
        }
        let mut at = self.now + base + extra;
        for p in &mut self.policies {
            at = p.deliver_at(from, to, self.now, at);
        }
        at
    }

    fn apply_actions(&mut self, me: NodeIndex, actions: &mut Vec<Action<N::Msg, N::Output>>) {
        let n = self.nodes.len();
        for action in actions.drain(..) {
            match action {
                Action::Broadcast(msg) => {
                    self.metrics.node_mut(me.as_usize()).record_send(
                        msg.kind(),
                        n as u64,
                        n as u64 - 1,
                        msg.wire_bytes(),
                    );
                    // Self-copy: immediate, not on the wire.
                    self.push(
                        self.now,
                        EventKind::Deliver {
                            to: me,
                            from: me,
                            msg: msg.clone(),
                            on_wire: false,
                        },
                    );
                    for i in 0..n {
                        let to = NodeIndex::new(i as u32);
                        if to == me {
                            continue;
                        }
                        let at = self.delivery_time(me, to);
                        self.push(
                            at,
                            EventKind::Deliver {
                                to,
                                from: me,
                                msg: msg.clone(),
                                on_wire: true,
                            },
                        );
                    }
                }
                Action::Send(to, msg) => {
                    let on_wire = to != me;
                    self.metrics.node_mut(me.as_usize()).record_send(
                        msg.kind(),
                        1,
                        u64::from(on_wire),
                        msg.wire_bytes(),
                    );
                    let at = if on_wire {
                        self.delivery_time(me, to)
                    } else {
                        self.now
                    };
                    self.push(
                        at,
                        EventKind::Deliver {
                            to,
                            from: me,
                            msg,
                            on_wire,
                        },
                    );
                }
                Action::SetTimer { after, tag } => {
                    self.push(self.now + after, EventKind::Timer { node: me, tag });
                }
                Action::Output(output) => {
                    self.outputs.push(OutputRecord {
                        at: self.now,
                        node: me,
                        output,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::UniformDelay;
    use crate::policy::AsyncWindow;

    /// Echo node: node 0 broadcasts at start; everyone outputs what they
    /// receive; receivers reply once directly to the sender.
    struct Echo {
        replied: bool,
    }

    impl Node for Echo {
        type Msg = Vec<u8>;
        type External = Vec<u8>;
        type Output = (NodeIndex, usize);

        fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
            if ctx.me() == NodeIndex::new(0) {
                ctx.broadcast(vec![0u8; 100]);
            }
        }

        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Self::Msg, Self::Output>,
            from: NodeIndex,
            msg: Self::Msg,
        ) {
            ctx.output((from, msg.len()));
            if !self.replied && from != ctx.me() {
                self.replied = true;
                ctx.send(from, vec![1u8; 10]);
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>, tag: u64) {
            ctx.output((ctx.me(), tag as usize));
        }

        fn on_external(
            &mut self,
            ctx: &mut Context<'_, Self::Msg, Self::Output>,
            input: Self::External,
        ) {
            ctx.broadcast(input);
        }
    }

    fn echo_sim(n: usize, seed: u64) -> Simulation<Echo> {
        SimulationBuilder::new(seed)
            .delay(FixedDelay::new(SimDuration::from_millis(10)))
            .build((0..n).map(|_| Echo { replied: false }).collect())
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut sim = echo_sim(4, 1);
        sim.run_until_idle();
        let broadcast_outputs: Vec<_> =
            sim.outputs().iter().filter(|o| o.output.1 == 100).collect();
        assert_eq!(broadcast_outputs.len(), 4);
        // Self-delivery at t=0; remote at t=10ms.
        assert_eq!(broadcast_outputs[0].at, SimTime::ZERO);
        for o in &broadcast_outputs[1..] {
            assert_eq!(o.at, SimTime::ZERO + SimDuration::from_millis(10));
        }
    }

    #[test]
    fn metrics_follow_both_conventions() {
        let mut sim = echo_sim(4, 1);
        sim.run_until_idle();
        let m = &sim.metrics().per_node()[0];
        // Broadcast counts n = 4 messages and (n-1) * 100 = 300 wire
        // bytes; node 0 additionally replies once (10 bytes) to the
        // first reply it receives.
        assert_eq!(m.sent_messages, 5);
        assert_eq!(m.sent_bytes, 310);
        // Three repliers sent 10 bytes each back to node 0.
        assert_eq!(m.recv_bytes, 30);
        // Node 2 replied but was not replied to: 1 msg, 10 bytes sent;
        // only the 100-byte broadcast received.
        let r = &sim.metrics().per_node()[2];
        assert_eq!(r.sent_messages, 1);
        assert_eq!(r.sent_bytes, 10);
        assert_eq!(r.recv_bytes, 100);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut sim = SimulationBuilder::new(seed)
                .delay(UniformDelay::new(
                    SimDuration::from_millis(1),
                    SimDuration::from_millis(50),
                ))
                .build((0..5).map(|_| Echo { replied: false }).collect());
            sim.run_until_idle();
            sim.outputs()
                .iter()
                .map(|o| (o.at, o.node, o.output))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        struct TimerNode;
        impl Node for TimerNode {
            type Msg = u32;
            type External = ();
            type Output = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u32, u64>) {
                ctx.set_timer(SimDuration::from_millis(30), 42);
                ctx.set_timer(SimDuration::from_millis(10), 43);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32, u64>, _: NodeIndex, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32, u64>, tag: u64) {
                ctx.output(tag);
            }
        }
        let mut sim = SimulationBuilder::new(0).build(vec![TimerNode]);
        sim.run_until_idle();
        assert_eq!(sim.outputs()[0].output, 43);
        assert_eq!(
            sim.outputs()[0].at,
            SimTime::ZERO + SimDuration::from_millis(10)
        );
        assert_eq!(sim.outputs()[1].output, 42);
        assert_eq!(
            sim.outputs()[1].at,
            SimTime::ZERO + SimDuration::from_millis(30)
        );
    }

    #[test]
    fn external_injection() {
        let mut sim = echo_sim(3, 1);
        sim.schedule_external(
            SimTime::ZERO + SimDuration::from_secs(1),
            NodeIndex::new(2),
            vec![7u8; 55],
        );
        sim.run_until_idle();
        let hits: Vec<_> = sim.outputs().iter().filter(|o| o.output.1 == 55).collect();
        assert_eq!(hits.len(), 3);
        assert!(hits
            .iter()
            .all(|o| o.at >= SimTime::ZERO + SimDuration::from_secs(1)));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = echo_sim(3, 1);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(5));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(5));
        // Remote deliveries (at 10ms) have not happened yet: only the
        // self-delivery output exists.
        assert_eq!(sim.outputs().len(), 1);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim.outputs().len() > 1);
    }

    #[test]
    fn async_window_policy_delays_delivery() {
        let mut sim = SimulationBuilder::new(1)
            .delay(FixedDelay::new(SimDuration::from_millis(10)))
            .policy(AsyncWindow {
                from: SimTime::ZERO,
                until: SimTime::ZERO + SimDuration::from_secs(2),
            })
            .build((0..3).map(|_| Echo { replied: false }).collect());
        sim.run_until_idle();
        let remote: Vec<_> = sim
            .outputs()
            .iter()
            .filter(|o| o.output.1 == 100 && o.node != NodeIndex::new(0))
            .collect();
        assert!(remote
            .iter()
            .all(|o| o.at >= SimTime::ZERO + SimDuration::from_secs(2)));
    }

    #[test]
    fn loss_adds_retransmission_delay_but_delivers() {
        let mut sim = SimulationBuilder::new(3)
            .delay(FixedDelay::new(SimDuration::from_millis(10)))
            .loss(0.5, SimDuration::from_millis(100))
            .build((0..2).map(|_| Echo { replied: false }).collect());
        sim.run_until_idle();
        // Both the broadcast and the reply still arrive eventually.
        assert!(sim
            .outputs()
            .iter()
            .any(|o| o.output.1 == 100 && o.node == NodeIndex::new(1)));
        assert!(sim
            .outputs()
            .iter()
            .any(|o| o.output.1 == 10 && o.node == NodeIndex::new(0)));
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn max_events_backstop() {
        // Two nodes ping-pong forever.
        struct PingPong;
        impl Node for PingPong {
            type Msg = u32;
            type External = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, u32, ()>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32, ()>, _: NodeIndex, m: u32) {
                ctx.broadcast(m + 1);
            }
        }
        let mut sim = SimulationBuilder::new(0)
            .max_events(1000)
            .build(vec![PingPong, PingPong]);
        sim.run_until_idle();
    }

    #[test]
    fn fault_plan_drops_traffic_while_down_and_restarts() {
        use crate::fault::FaultPlan;

        /// Counts deliveries; outputs a marker on restart.
        struct Probe {
            got: u32,
        }
        impl Node for Probe {
            type Msg = u32;
            type External = ();
            type Output = &'static str;
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, u32, &'static str>,
                _: NodeIndex,
                _: u32,
            ) {
                self.got += 1;
                ctx.output("msg");
            }
            fn on_external(&mut self, ctx: &mut Context<'_, u32, &'static str>, _: ()) {
                ctx.broadcast(7);
            }
            fn on_crash(&mut self) {
                self.got = 0; // volatile state is lost
            }
            fn on_restart(&mut self, ctx: &mut Context<'_, u32, &'static str>) {
                ctx.output("restarted");
            }
        }

        let ms = SimDuration::from_millis;
        let plan = FaultPlan::new().crash_between(
            NodeIndex::new(1),
            SimTime::ZERO + ms(50),
            SimTime::ZERO + ms(150),
        );
        let mut sim = SimulationBuilder::new(1)
            .delay(FixedDelay::new(ms(10)))
            .fault_plan(plan)
            .build(vec![Probe { got: 0 }, Probe { got: 0 }]);
        // While node 1 is down, node 0's broadcast at t=100 must not reach it.
        sim.schedule_external(SimTime::ZERO + ms(100), NodeIndex::new(0), ());
        // Messages sent to node 1 while down are dropped, not queued.
        assert!(sim.is_alive(NodeIndex::new(1)));
        sim.run_until(SimTime::ZERO + ms(120));
        assert!(!sim.is_alive(NodeIndex::new(1)));
        assert_eq!(sim.node(1).got, 0);
        assert_eq!(sim.metrics().per_node()[1].recv_messages, 0);
        sim.run_until(SimTime::ZERO + ms(200));
        assert!(sim.is_alive(NodeIndex::new(1)));
        let restarted: Vec<_> = sim
            .outputs()
            .iter()
            .filter(|o| o.output == "restarted")
            .collect();
        assert_eq!(restarted.len(), 1);
        assert_eq!(restarted[0].node, NodeIndex::new(1));
        assert_eq!(restarted[0].at, SimTime::ZERO + ms(150));
        // A broadcast after the restart is delivered again.
        sim.schedule_external(SimTime::ZERO + ms(210), NodeIndex::new(0), ());
        sim.run_until(SimTime::ZERO + ms(300));
        assert_eq!(sim.node(1).got, 1);
    }

    #[test]
    fn down_at_zero_skips_on_start() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new().crash_at(NodeIndex::new(0), SimTime::ZERO);
        let mut sim = SimulationBuilder::new(1)
            .delay(FixedDelay::new(SimDuration::from_millis(10)))
            .fault_plan(plan)
            .build((0..3).map(|_| Echo { replied: false }).collect());
        assert!(!sim.is_alive(NodeIndex::new(0)));
        sim.run_until_idle();
        // Node 0 (the broadcaster) never started: nothing was sent at all.
        assert_eq!(sim.outputs().len(), 0);
        assert_eq!(sim.metrics().total_bytes(), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn lifecycle_transitions_are_flight_recorded() {
        use crate::fault::FaultPlan;
        use icc_telemetry::SpanKind;
        let ms = SimDuration::from_millis;
        let plan = FaultPlan::new().crash_between(
            NodeIndex::new(1),
            SimTime::ZERO + ms(50),
            SimTime::ZERO + ms(150),
        );
        let mut sim = SimulationBuilder::new(1)
            .delay(FixedDelay::new(ms(10)))
            .fault_plan(plan)
            .build((0..2).map(|_| Echo { replied: false }).collect());
        sim.run_until(SimTime::ZERO + ms(200));
        let evs = sim.engine_events();
        let kinds: Vec<(u32, SpanKind, u64)> =
            evs.iter().map(|e| (e.node, e.kind, e.at_us)).collect();
        assert_eq!(
            kinds,
            vec![
                (1, SpanKind::NodeDown, 50_000),
                (1, SpanKind::NodeUp, 150_000),
            ]
        );
    }

    #[test]
    fn reset_metrics_clears_counters() {
        let mut sim = echo_sim(3, 1);
        sim.run_until_idle();
        assert!(sim.metrics().total_bytes() > 0);
        sim.reset_metrics();
        assert_eq!(sim.metrics().total_bytes(), 0);
        assert_eq!(sim.metrics().per_node().len(), 3);
    }
}
