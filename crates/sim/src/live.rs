//! A real-time, multi-threaded transport for [`Node`] implementations.
//!
//! The protocol state machines are sans-IO, so the same nodes that run
//! under the deterministic discrete-event engine also run here: one OS
//! thread per node, crossbeam channels as the network, the wall clock
//! as time. This is the "it is not coupled to the simulator" proof —
//! useful for demos and smoke tests, not for measurements (wall-clock
//! runs are not reproducible; use [`Simulation`](crate::Simulation) for
//! experiments).
//!
//! Message delay is whatever the channels cost (microseconds), so pace
//! protocols with their own delay parameters (e.g. a positive `ε`).

use crate::engine::OutputRecord;
use crate::node::{Action, Context, Node};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use icc_types::{NodeIndex, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

enum LiveEvent<M, X> {
    Msg { from: NodeIndex, msg: M },
    External(X),
    Stop,
}

/// Handle for injecting external inputs into a running live cluster.
pub struct LiveHandle<X> {
    inboxes: Vec<Sender<X>>,
}

impl<X> LiveHandle<X> {
    /// Sends an external input to `node`. Returns `false` if the node
    /// has already stopped.
    pub fn inject(&self, node: NodeIndex, input: X) -> bool {
        self.inboxes[node.as_usize()].send(input).is_ok()
    }
}

/// Runs `nodes` on real threads for `duration` of wall-clock time and
/// returns every emitted output, stamped with elapsed time since start.
///
/// `inject` is called once with a [`LiveHandle`] before the clock
/// starts, letting the caller feed external inputs from its own thread
/// while the cluster runs.
///
/// # Panics
///
/// Panics if a node thread panics.
pub fn run_live<N>(
    nodes: Vec<N>,
    duration: Duration,
    inject: impl FnOnce(LiveHandle<N::External>),
) -> Vec<OutputRecord<N::Output>>
where
    N: Node + Send + 'static,
    N::Msg: Send + 'static,
    N::External: Send + 'static,
    N::Output: Send + 'static,
{
    let n = nodes.len();
    let mut senders: Vec<Sender<LiveEvent<N::Msg, N::External>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<LiveEvent<N::Msg, N::External>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let (out_tx, out_rx) = unbounded::<OutputRecord<N::Output>>();

    // External-input fan-in: one forwarding channel per node so the
    // handle does not expose the internal event type.
    let mut ext_senders = Vec::with_capacity(n);
    for s in &senders {
        let (ext_tx, ext_rx) = bounded::<N::External>(1024);
        ext_senders.push(ext_tx);
        let s = s.clone();
        std::thread::spawn(move || {
            for input in ext_rx {
                if s.send(LiveEvent::External(input)).is_err() {
                    break;
                }
            }
        });
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (i, (mut node, inbox)) in nodes.into_iter().zip(receivers).enumerate() {
        let me = NodeIndex::new(i as u32);
        let peers = senders.clone();
        let out = out_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut timers: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
            let mut actions: Vec<Action<N::Msg, N::Output>> = Vec::new();
            let now_sim = |start: Instant| SimTime::from_micros(start.elapsed().as_micros() as u64);

            // on_start
            {
                let mut ctx = Context {
                    me,
                    n,
                    now: now_sim(start),
                    alive: None,
                    actions: &mut actions,
                };
                node.on_start(&mut ctx);
            }
            loop {
                // Drain actions from the previous handler.
                for action in actions.drain(..) {
                    match action {
                        Action::Broadcast(msg) => {
                            for peer in &peers {
                                let _ = peer.send(LiveEvent::Msg {
                                    from: me,
                                    msg: msg.clone(),
                                });
                            }
                        }
                        Action::Send(to, msg) => {
                            let _ = peers[to.as_usize()].send(LiveEvent::Msg { from: me, msg });
                        }
                        Action::SetTimer { after, tag } => {
                            timers.push(Reverse((
                                Instant::now() + Duration::from_micros(after.as_micros()),
                                tag,
                            )));
                        }
                        Action::Output(output) => {
                            let _ = out.send(OutputRecord {
                                at: now_sim(start),
                                node: me,
                                output,
                            });
                        }
                    }
                }
                // Fire due timers.
                let now = Instant::now();
                if let Some(Reverse((deadline, tag))) = timers.peek().copied() {
                    if deadline <= now {
                        timers.pop();
                        let mut ctx = Context {
                            me,
                            n,
                            now: now_sim(start),
                            alive: None,
                            actions: &mut actions,
                        };
                        node.on_timer(&mut ctx, tag);
                        continue;
                    }
                }
                // Wait for the next event or timer deadline.
                let timeout = timers
                    .peek()
                    .map(|Reverse((d, _))| d.saturating_duration_since(now))
                    .unwrap_or(Duration::from_millis(50));
                match inbox.recv_timeout(timeout) {
                    Ok(LiveEvent::Msg { from, msg }) => {
                        let mut ctx = Context {
                            me,
                            n,
                            now: now_sim(start),
                            alive: None,
                            actions: &mut actions,
                        };
                        node.on_message(&mut ctx, from, msg);
                    }
                    Ok(LiveEvent::External(input)) => {
                        let mut ctx = Context {
                            me,
                            n,
                            now: now_sim(start),
                            alive: None,
                            actions: &mut actions,
                        };
                        node.on_external(&mut ctx, input);
                    }
                    Ok(LiveEvent::Stop) => break,
                    Err(RecvTimeoutError::Timeout) => {} // loop fires timers
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            node
        }));
    }
    drop(out_tx);

    inject(LiveHandle {
        inboxes: ext_senders,
    });
    std::thread::sleep(duration);
    for s in &senders {
        let _ = s.send(LiveEvent::Stop);
    }
    for h in handles {
        h.join().expect("node thread panicked");
    }
    out_rx.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icc_types::SimDuration;

    /// Node that relays a token around the ring, counting hops.
    struct Relay {
        hops: u32,
    }

    impl Node for Relay {
        type Msg = u32;
        type External = u32;
        type Output = u32;

        fn on_external(&mut self, ctx: &mut Context<'_, u32, u32>, input: u32) {
            let next = NodeIndex::new((ctx.me().get() + 1) % ctx.n() as u32);
            ctx.send(next, input);
        }

        fn on_message(&mut self, ctx: &mut Context<'_, u32, u32>, _from: NodeIndex, msg: u32) {
            self.hops += 1;
            ctx.output(msg);
            if msg > 0 {
                let next = NodeIndex::new((ctx.me().get() + 1) % ctx.n() as u32);
                ctx.send(next, msg - 1);
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, u32, u32>, tag: u64) {
            ctx.output(tag as u32 + 1000);
        }

        fn on_start(&mut self, ctx: &mut Context<'_, u32, u32>) {
            if ctx.me() == NodeIndex::new(0) {
                ctx.set_timer(SimDuration::from_millis(5), 7);
            }
        }
    }

    #[test]
    fn ring_relay_and_timers_run_live() {
        let nodes = (0..4).map(|_| Relay { hops: 0 }).collect();
        let outputs = run_live(nodes, Duration::from_millis(300), |handle| {
            assert!(handle.inject(NodeIndex::new(0), 10));
        });
        // Token visits 11 nodes (10 → 0), each emitting an output.
        let token_hops = outputs.iter().filter(|o| o.output < 1000).count();
        assert_eq!(token_hops, 11);
        // The timer fired on node 0.
        assert!(outputs
            .iter()
            .any(|o| o.output == 1007 && o.node == NodeIndex::new(0)));
    }
}
