//! The channel backend of the wall-clock runtime: real threads, real
//! time, crossbeam channels as the network.
//!
//! The protocol state machines are sans-IO, so the same nodes that run
//! under the deterministic discrete-event engine also run here — one OS
//! thread per node, each executing the shared [`drive`] loop from
//! [`crate::runtime`] over a [`ChannelTransport`]. This is the "not
//! coupled to the simulator" proof and the reference backend for the
//! transport abstraction: `icc-net` swaps the channels for kernel TCP
//! sockets without the loop or the nodes changing.
//!
//! Useful for demos and smoke tests, not for measurements (wall-clock
//! runs are not reproducible; use [`Simulation`](crate::Simulation) for
//! experiments). Message delay is whatever the channels cost
//! (microseconds), so pace protocols with their own delay parameters
//! (e.g. a positive `ε`).

use crate::engine::OutputRecord;
use crate::node::Node;
use crate::runtime::{drive, RecvError, Transport, TransportEvent};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use icc_types::NodeIndex;
use std::time::{Duration, Instant};

/// The in-process [`Transport`]: every peer is a crossbeam channel.
/// Sends never block (channels are unbounded) and never fail visibly —
/// a stopped peer's events are simply dropped, which is exactly the
/// best-effort contract the trait specifies.
pub struct ChannelTransport<M, X> {
    me: NodeIndex,
    peers: Vec<Sender<TransportEvent<M, X>>>,
    inbox: Receiver<TransportEvent<M, X>>,
}

impl<M: Clone, X> ChannelTransport<M, X> {
    /// Builds a fully-connected mesh of `n` transports. Also returns the
    /// raw event senders, one per node, through which a harness injects
    /// [`TransportEvent::External`] inputs and [`TransportEvent::Stop`].
    #[allow(clippy::type_complexity)]
    pub fn mesh(
        n: usize,
    ) -> (
        Vec<ChannelTransport<M, X>>,
        Vec<Sender<TransportEvent<M, X>>>,
    ) {
        let mut senders = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            inboxes.push(rx);
        }
        let transports = inboxes
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| ChannelTransport {
                me: NodeIndex::new(i as u32),
                peers: senders.clone(),
                inbox,
            })
            .collect();
        (transports, senders)
    }
}

impl<M: Clone, X> Transport for ChannelTransport<M, X> {
    type Msg = M;
    type External = X;

    fn me(&self) -> NodeIndex {
        self.me
    }

    fn n(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, to: NodeIndex, msg: M) {
        let _ = self.peers[to.as_usize()].send(TransportEvent::Msg { from: self.me, msg });
    }

    fn recv(&mut self, timeout: Duration) -> Result<TransportEvent<M, X>, RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(ev) => Ok(ev),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }
}

/// Handle for injecting external inputs into a running live cluster.
pub struct LiveHandle<X> {
    inboxes: Vec<Sender<X>>,
}

impl<X> LiveHandle<X> {
    /// Sends an external input to `node`. Returns `false` if the node
    /// has already stopped.
    pub fn inject(&self, node: NodeIndex, input: X) -> bool {
        self.inboxes[node.as_usize()].send(input).is_ok()
    }
}

/// Runs `nodes` on real threads for `duration` of wall-clock time and
/// returns every emitted output, stamped with elapsed time since start.
///
/// `inject` is called once with a [`LiveHandle`] before the clock
/// starts, letting the caller feed external inputs from its own thread
/// while the cluster runs.
///
/// # Panics
///
/// Panics if a node thread panics.
pub fn run_live<N>(
    nodes: Vec<N>,
    duration: Duration,
    inject: impl FnOnce(LiveHandle<N::External>),
) -> Vec<OutputRecord<N::Output>>
where
    N: Node + Send + 'static,
    N::Msg: Send + 'static,
    N::External: Send + 'static,
    N::Output: Send + 'static,
{
    let n = nodes.len();
    let (transports, senders) = ChannelTransport::<N::Msg, N::External>::mesh(n);
    let (out_tx, out_rx) = unbounded::<OutputRecord<N::Output>>();

    // External-input fan-in: one forwarding channel per node so the
    // handle does not expose the internal event type.
    let mut ext_senders = Vec::with_capacity(n);
    for s in &senders {
        let (ext_tx, ext_rx) = bounded::<N::External>(1024);
        ext_senders.push(ext_tx);
        let s = s.clone();
        std::thread::spawn(move || {
            for input in ext_rx {
                if s.send(TransportEvent::External(input)).is_err() {
                    break;
                }
            }
        });
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (node, transport) in nodes.into_iter().zip(transports) {
        let out = out_tx.clone();
        handles.push(std::thread::spawn(move || {
            drive(node, transport, start, |rec| {
                let _ = out.send(rec);
            })
        }));
    }
    drop(out_tx);

    inject(LiveHandle {
        inboxes: ext_senders,
    });
    std::thread::sleep(duration);
    for s in &senders {
        let _ = s.send(TransportEvent::Stop);
    }
    for h in handles {
        h.join().expect("node thread panicked");
    }
    out_rx.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Context;
    use icc_types::SimDuration;

    /// Node that relays a token around the ring, counting hops.
    struct Relay {
        hops: u32,
    }

    impl Node for Relay {
        type Msg = u32;
        type External = u32;
        type Output = u32;

        fn on_external(&mut self, ctx: &mut Context<'_, u32, u32>, input: u32) {
            let next = NodeIndex::new((ctx.me().get() + 1) % ctx.n() as u32);
            ctx.send(next, input);
        }

        fn on_message(&mut self, ctx: &mut Context<'_, u32, u32>, _from: NodeIndex, msg: u32) {
            self.hops += 1;
            ctx.output(msg);
            if msg > 0 {
                let next = NodeIndex::new((ctx.me().get() + 1) % ctx.n() as u32);
                ctx.send(next, msg - 1);
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, u32, u32>, tag: u64) {
            ctx.output(tag as u32 + 1000);
        }

        fn on_start(&mut self, ctx: &mut Context<'_, u32, u32>) {
            if ctx.me() == NodeIndex::new(0) {
                ctx.set_timer(SimDuration::from_millis(5), 7);
            }
        }
    }

    #[test]
    fn ring_relay_and_timers_run_live() {
        let nodes = (0..4).map(|_| Relay { hops: 0 }).collect();
        let outputs = run_live(nodes, Duration::from_millis(300), |handle| {
            assert!(handle.inject(NodeIndex::new(0), 10));
        });
        // Token visits 11 nodes (10 → 0), each emitting an output.
        let token_hops = outputs.iter().filter(|o| o.output < 1000).count();
        assert_eq!(token_hops, 11);
        // The timer fired on node 0.
        assert!(outputs
            .iter()
            .any(|o| o.output == 1007 && o.node == NodeIndex::new(0)));
    }

    /// Broadcast through the channel transport reaches all n nodes,
    /// including the broadcaster itself (the paper's primitive).
    struct Bcast;
    impl Node for Bcast {
        type Msg = u32;
        type External = u32;
        type Output = (NodeIndex, u32);
        fn on_external(&mut self, ctx: &mut Context<'_, u32, (NodeIndex, u32)>, input: u32) {
            ctx.broadcast(input);
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, u32, (NodeIndex, u32)>,
            from: NodeIndex,
            msg: u32,
        ) {
            ctx.output((from, msg));
        }
    }

    #[test]
    fn broadcast_includes_self_delivery() {
        let nodes = (0..3).map(|_| Bcast).collect();
        let outputs = run_live(nodes, Duration::from_millis(150), |handle| {
            assert!(handle.inject(NodeIndex::new(1), 77));
        });
        let receivers: std::collections::BTreeSet<u32> = outputs
            .iter()
            .filter(|o| o.output == (NodeIndex::new(1), 77))
            .map(|o| o.node.get())
            .collect();
        assert_eq!(receivers, [0u32, 1, 2].into_iter().collect());
    }
}
