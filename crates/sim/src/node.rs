//! The sans-IO node interface.
//!
//! A [`Node`] is a deterministic state machine. The engine hands it
//! events; it reacts by queuing actions on its [`Context`]. All protocol
//! implementations in this workspace (ICC0/1/2, HotStuff, Tendermint
//! baselines, Byzantine variants) implement this one trait.

use icc_types::{NodeIndex, SimDuration, SimTime};

/// A message that knows its wire size, which the engine meters to
/// reproduce the paper's traffic measurements.
pub trait WireMessage: Clone {
    /// Encoded size in bytes as it would appear on the wire.
    fn wire_bytes(&self) -> usize;

    /// A short label for per-kind metrics (e.g. `"proposal"`).
    fn kind(&self) -> &'static str {
        "msg"
    }
}

impl WireMessage for u32 {
    fn wire_bytes(&self) -> usize {
        4
    }
}

impl WireMessage for Vec<u8> {
    fn wire_bytes(&self) -> usize {
        self.len()
    }
}

impl WireMessage for icc_types::messages::ConsensusMessage {
    fn wire_bytes(&self) -> usize {
        icc_types::messages::ConsensusMessage::wire_bytes(self)
    }
    fn kind(&self) -> &'static str {
        icc_types::messages::ConsensusMessage::kind(self)
    }
}

/// A protocol participant driven by the simulation engine.
///
/// All handlers receive a [`Context`] used to broadcast or send
/// messages, set timers, and emit outputs. Handlers must be
/// deterministic: any randomness a node needs should be derived from
/// data it was constructed with or received.
pub trait Node {
    /// The message type exchanged between nodes.
    type Msg: WireMessage;
    /// External inputs injected by the harness (e.g. client commands).
    type External;
    /// Outputs the node emits (e.g. finalized batches); collected into
    /// the simulation trace.
    type Output;

    /// Called once at simulation start (time zero), in node-index order.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this node.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
        from: NodeIndex,
        msg: Self::Msg,
    );

    /// Called when a timer set via [`Context::set_timer`] fires. `tag`
    /// is the value passed at set time; stale timers are the node's to
    /// ignore.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called when the harness injects an external input.
    fn on_external(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
        input: Self::External,
    ) {
        let _ = (ctx, input);
    }

    /// Called when a [`FaultPlan`](crate::FaultPlan) takes this node
    /// down. No [`Context`] is provided — a crashing process cannot
    /// send, schedule, or emit. Implementations should drop volatile
    /// state here; anything meant to survive must already live in a
    /// durable store the node keeps across the crash.
    fn on_crash(&mut self) {}

    /// Called when a [`FaultPlan`](crate::FaultPlan) brings this node
    /// back up. The node restores whatever durable state it kept and may
    /// immediately act (re-arm timers, announce itself). Pending timers
    /// from before the crash were discarded by the engine.
    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        let _ = ctx;
    }

    /// Called when `peer` *departs the membership* (a
    /// [`FaultPlan::depart_at`](crate::FaultPlan::depart_at) event, or
    /// the deployment equivalent of a node being replaced at an epoch
    /// boundary). Dissemination layers should evict the peer: drop
    /// pending-request/backoff state tied to it and stop addressing it.
    /// Default: no-op.
    fn on_peer_departed(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
        peer: NodeIndex,
    ) {
        let _ = (ctx, peer);
    }
}

/// An action queued by a node during one handler invocation; drained by
/// the engine after the handler returns (the paper's execution model:
/// the pool is not modified while a clause executes).
#[derive(Debug)]
pub(crate) enum Action<M, O> {
    Broadcast(M),
    Send(NodeIndex, M),
    SetTimer { after: SimDuration, tag: u64 },
    Output(O),
}

/// The interface through which a node acts on the world.
#[derive(Debug)]
pub struct Context<'a, M, O> {
    pub(crate) me: NodeIndex,
    pub(crate) n: usize,
    pub(crate) now: SimTime,
    /// Liveness view over all nodes, when the transport tracks one
    /// (the discrete-event engine does; the live transport does not).
    pub(crate) alive: Option<&'a [bool]>,
    pub(crate) actions: &'a mut Vec<Action<M, O>>,
}

impl<M, O> Context<'_, M, O> {
    /// This node's index.
    pub fn me(&self) -> NodeIndex {
        self.me
    }

    /// Number of nodes in the simulation.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether `peer` is currently up, as far as the transport knows.
    ///
    /// Models the failure detection a TCP-based deployment gets for free
    /// (a connection to a crashed peer resets). Transports without
    /// liveness tracking report every peer as up, so protocols must
    /// treat this as an *optimization hint* — correctness may not depend
    /// on it.
    pub fn peer_up(&self, peer: NodeIndex) -> bool {
        self.alive
            .is_none_or(|a| a.get(peer.as_usize()).copied().unwrap_or(true))
    }

    /// The current simulated time — the protocol's `clock()`.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Broadcasts `msg` to **all** parties, including this one (the
    /// paper's broadcast primitive: a party's pool holds messages
    /// received from all parties *including itself*). Self-delivery is
    /// immediate and free; deliveries to the other `n − 1` parties go
    /// through the network model and are metered.
    pub fn broadcast(&mut self, msg: M) {
        self.actions.push(Action::Broadcast(msg));
    }

    /// Sends `msg` to a single party (used by the gossip and erasure
    /// sub-layers; plain ICC0 only broadcasts).
    pub fn send(&mut self, to: NodeIndex, msg: M) {
        self.actions.push(Action::Send(to, msg));
    }

    /// Schedules `on_timer(tag)` to fire `after` from now.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) {
        self.actions.push(Action::SetTimer { after, tag });
    }

    /// Emits an output record into the simulation trace.
    pub fn output(&mut self, output: O) {
        self.actions.push(Action::Output(output));
    }
}
