//! Fault plans: scheduled crash and restart of nodes.
//!
//! The paper's fault model distinguishes Byzantine parties from parties
//! that have "simply crashed" (§1). A [`FaultPlan`] schedules the latter
//! as *lifecycle events*: a node goes **down** at time `t` (it stops
//! receiving messages, timers, and external inputs — in-flight traffic
//! addressed to it is dropped by the engine) and may come back **up** at
//! `t' > t`, at which point the engine calls
//! [`Node::on_restart`](crate::Node::on_restart) so the node can restore
//! durable state and rejoin.
//!
//! A plan that takes a node down at time zero and never brings it back is
//! exactly the legacy "crashed forever" fault: crash-without-restart is
//! the degenerate fault plan. Because lifecycle is orthogonal to the
//! node's *logic*, fault plans compose with Byzantine behaviors — a node
//! can equivocate while up and still be churned down and up by the plan.

use icc_types::{NodeIndex, SimDuration, SimTime};

/// Direction of a lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The node crashes: handlers stop running, inbound traffic is lost.
    Down,
    /// The node restarts: `on_restart` runs, then handlers resume.
    Up,
    /// The node *departs the membership*: it goes down like a crash,
    /// and every other live node is told via
    /// [`Node::on_peer_departed`](crate::Node::on_peer_departed) so
    /// dissemination layers can evict it (drop retry/backoff state,
    /// stop dialing). Pairs with an epoch schedule that removes the
    /// node at a boundary round.
    Depart,
}

/// A deterministic schedule of node crashes and restarts.
///
/// Build one with the combinators below and install it via
/// [`SimulationBuilder::fault_plan`](crate::SimulationBuilder::fault_plan).
/// Events at the same instant are applied in insertion order.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, NodeIndex, LifecycleEvent)>,
}

impl FaultPlan {
    /// An empty plan (no scheduled faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Crashes `node` at `at`. Without a matching [`restart_at`] this is
    /// the degenerate crash-forever fault.
    ///
    /// [`restart_at`]: FaultPlan::restart_at
    pub fn crash_at(mut self, node: NodeIndex, at: SimTime) -> Self {
        self.events.push((at, node, LifecycleEvent::Down));
        self
    }

    /// Restarts `node` at `at`.
    pub fn restart_at(mut self, node: NodeIndex, at: SimTime) -> Self {
        self.events.push((at, node, LifecycleEvent::Up));
        self
    }

    /// Departs `node` from the membership at `at`: it crashes for good
    /// and surviving nodes get a
    /// [`Node::on_peer_departed`](crate::Node::on_peer_departed) call.
    pub fn depart_at(mut self, node: NodeIndex, at: SimTime) -> Self {
        self.events.push((at, node, LifecycleEvent::Depart));
        self
    }

    /// Crashes `node` at `down` and restarts it at `up`.
    pub fn crash_between(self, node: NodeIndex, down: SimTime, up: SimTime) -> Self {
        assert!(down < up, "crash_between requires down < up");
        self.crash_at(node, down).restart_at(node, up)
    }

    /// Repeated churn: starting at `first_down`, `node` goes down for
    /// `down_for`, then stays up until the next period boundary; the
    /// cycle repeats `cycles` times with period `period`.
    pub fn churn(
        mut self,
        node: NodeIndex,
        first_down: SimTime,
        down_for: SimDuration,
        period: SimDuration,
        cycles: usize,
    ) -> Self {
        assert!(
            down_for < period,
            "churn requires down_for < period so the node is up between outages"
        );
        let mut t = first_down;
        for _ in 0..cycles {
            self = self.crash_between(node, t, t + down_for);
            t += period;
        }
        self
    }

    /// True if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, stably sorted by time (insertion order
    /// breaks ties).
    pub(crate) fn into_events(mut self) -> Vec<(SimTime, NodeIndex, LifecycleEvent)> {
        self.events.sort_by_key(|(at, _, _)| *at);
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn churn_expands_to_alternating_events() {
        let plan = FaultPlan::new().churn(
            NodeIndex::new(2),
            at(100),
            SimDuration::from_millis(50),
            SimDuration::from_millis(200),
            3,
        );
        let ev = plan.into_events();
        assert_eq!(ev.len(), 6);
        assert_eq!(ev[0], (at(100), NodeIndex::new(2), LifecycleEvent::Down));
        assert_eq!(ev[1], (at(150), NodeIndex::new(2), LifecycleEvent::Up));
        assert_eq!(ev[4], (at(500), NodeIndex::new(2), LifecycleEvent::Down));
        assert_eq!(ev[5], (at(550), NodeIndex::new(2), LifecycleEvent::Up));
    }

    #[test]
    fn events_sort_by_time() {
        let plan = FaultPlan::new()
            .crash_at(NodeIndex::new(1), at(300))
            .crash_between(NodeIndex::new(0), at(10), at(20));
        let ev = plan.into_events();
        assert_eq!(ev[0].0, at(10));
        assert_eq!(ev[1].0, at(20));
        assert_eq!(ev[2].0, at(300));
    }

    #[test]
    #[should_panic(expected = "down < up")]
    fn crash_between_validates_order() {
        let _ = FaultPlan::new().crash_between(NodeIndex::new(0), at(20), at(10));
    }
}
