//! A deterministic discrete-event network simulator.
//!
//! The paper's evaluation ran on the live Internet Computer; this crate
//! is the substitute substrate (see `DESIGN.md` §4): a seeded,
//! deterministic event loop with pluggable network-delay models,
//! partition/asynchrony injection, message loss with retransmission, and
//! per-node traffic metering — everything needed to regenerate Table 1
//! and the analytical experiments.
//!
//! # Architecture
//!
//! Protocol logic implements the sans-IO [`Node`] trait: the engine
//! calls `on_start` / `on_message` / `on_timer` / `on_external`, and the
//! node reacts through its [`Context`] (broadcast, send, timers,
//! outputs). Nodes never see wall-clock time or real sockets, so every
//! execution is a pure function of `(node logic, seed, schedule)` —
//! replayable and explorable by the property tests.
//!
//! * [`node`] — the [`Node`] trait and [`Context`];
//! * [`engine`] — the event loop ([`Simulation`], [`SimulationBuilder`]);
//! * [`delay`] — network delay models, including the inter-datacenter
//!   model matching the paper's reported RTTs (6–110 ms);
//! * [`policy`] — delivery policies layered on the delay model:
//!   partitions, asynchronous windows, targeted delays;
//! * [`fault`] — fault plans: scheduled crashes and restarts driven
//!   through the engine as lifecycle events (messages to a down node are
//!   *dropped*, unlike the delay-only policies);
//! * [`metrics`] — per-node message/byte counters;
//! * [`runtime`] — the wall-clock counterpart: a [`Transport`] trait
//!   (typed inbox/outbox among indexed peers) and one shared [`drive`]
//!   loop that runs any [`Node`] on any transport;
//! * [`live`] — the in-process transport backend: crossbeam channels as
//!   the network (`icc-net` provides the TCP backend).
//!
//! # Example
//!
//! ```
//! use icc_sim::{Node, Context, SimulationBuilder, delay::FixedDelay};
//! use icc_types::{NodeIndex, SimDuration};
//!
//! // A node that gossips a counter once.
//! struct Counter(u32);
//! impl Node for Counter {
//!     type Msg = u32;
//!     type External = ();
//!     type Output = u32;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
//!         if ctx.me() == NodeIndex::new(0) {
//!             ctx.broadcast(7);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>,
//!                   _from: NodeIndex, msg: u32) {
//!         ctx.output(msg);
//!     }
//! }
//!
//! let mut sim = SimulationBuilder::new(42)
//!     .delay(FixedDelay::new(SimDuration::from_millis(10)))
//!     .build((0..4).map(|_| Counter(7)).collect());
//! sim.run_until_idle();
//! assert_eq!(sim.outputs().len(), 4); // everyone (incl. sender) got it
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod engine;
pub mod fault;
pub mod live;
pub mod metrics;
pub mod node;
pub mod policy;
pub mod runtime;

pub use engine::{Simulation, SimulationBuilder};
pub use fault::{FaultPlan, LifecycleEvent};
pub use metrics::{
    GossipCounters, Metrics, MetricsSummary, NodeMetrics, PoolCounters, RecoveryCounters,
};
pub use node::{Context, Node, WireMessage};
pub use runtime::{drive, RecvError, Transport, TransportEvent};
