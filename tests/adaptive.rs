//! The adaptive-`Δbnd` variant end-to-end (paper §1: adjusting to an
//! unknown communication-delay bound).

use icc_core::cluster::ClusterBuilder;
use icc_sim::delay::FixedDelay;
use icc_tests::assert_chains_consistent;
use icc_types::SimDuration;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

#[test]
fn misconfigured_static_bound_stalls_commits() {
    // True δ = 50 ms, static Δbnd = 2 ms: rounds proceed (P1) but the
    // support rule sprays across ranks and finalization quorums rarely
    // form.
    let mut cluster = ClusterBuilder::new(7)
        .seed(1)
        .network(FixedDelay::new(ms(50)))
        .protocol_delays(ms(2), SimDuration::ZERO)
        .build();
    cluster.run_for(SimDuration::from_secs(10));
    assert_chains_consistent(&cluster); // safety unaffected
    let entered = cluster.sim.node(0).core().current_round().get();
    let committed = cluster.min_committed_round();
    assert!(entered > 30, "tree must keep growing: {entered}");
    assert!(
        committed * 4 < entered,
        "a badly wrong bound should commit rarely: {committed}/{entered}"
    );
}

#[test]
fn adaptive_bound_recovers_liveness() {
    let mut cluster = ClusterBuilder::new(7)
        .seed(1)
        .network(FixedDelay::new(ms(50)))
        .adaptive_delays(ms(2), ms(2), SimDuration::from_secs(2), SimDuration::ZERO)
        .build();
    cluster.run_for(SimDuration::from_secs(10));
    assert_chains_consistent(&cluster);
    let entered = cluster.sim.node(0).core().current_round().get();
    let committed = cluster.min_committed_round();
    assert!(
        committed * 10 > entered * 9,
        "adaptive must commit nearly every round: {committed}/{entered}"
    );
    // The learned bound must be at least the actual delay.
    let bound = cluster.sim.node(0).core().delta_bound();
    assert!(bound >= ms(30), "converged bound {bound} too small");
}

#[test]
fn adaptive_does_not_overshoot_on_a_fast_network() {
    // δ = 5 ms with a generous initial guess: the shrink side should
    // pull Δbnd down over time without ever losing liveness.
    let mut cluster = ClusterBuilder::new(4)
        .seed(2)
        .network(FixedDelay::new(ms(5)))
        .adaptive_delays(ms(500), ms(5), SimDuration::from_secs(2), SimDuration::ZERO)
        .build();
    cluster.run_for(SimDuration::from_secs(20));
    assert_chains_consistent(&cluster);
    let bound = cluster.sim.node(0).core().delta_bound();
    assert!(
        bound < ms(500),
        "bound should decay from the inflated start: {bound}"
    );
    let committed = cluster.min_committed_round();
    assert!(
        committed > 500,
        "fast network must commit fast: {committed}"
    );
}
