//! Liveness (Properties P1 and P3): the tree grows every round; under
//! partial synchrony with an honest leader the leader's block finalizes
//! in its own round; intermittent synchrony maintains throughput.

use icc_core::cluster::ClusterBuilder;
use icc_core::events::NodeEvent;
use icc_sim::policy::AsyncWindow;
use icc_tests::assert_chains_consistent;
use icc_types::{Rank, SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

#[test]
fn p3_honest_synchronous_rounds_commit_leader_blocks() {
    // All honest, synchronous, delays satisfying 2δ + Δprop(0) ≤ Δntry(1):
    // every round's notarized block must be the leader's (rank 0), and
    // every round commits.
    let mut cluster = ClusterBuilder::new(7).seed(1).build();
    cluster.run_for(SimDuration::from_secs(2));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 50);
    for (round, _, rank) in cluster.round_stats(0) {
        assert_eq!(rank, Rank::LEADER, "non-leader block notarized in {round}");
    }
    // Consecutive rounds, no gaps: block k's parent is block k-1.
    for w in chain.windows(2) {
        assert_eq!(w[1].parent(), w[0].hash());
        assert_eq!(w[1].round().get(), w[0].round().get() + 1);
    }
}

#[test]
fn p1_tree_grows_even_while_commits_stall() {
    // An asynchronous window stalls finalization, but rounds must keep
    // finishing once messages flow again — and a block exists for every
    // round in between (the committed chain has no round gaps).
    let mut cluster = ClusterBuilder::new(4)
        .seed(2)
        .protocol_delays(ms(60), SimDuration::ZERO)
        .policy(AsyncWindow {
            from: SimTime::ZERO + ms(200),
            until: SimTime::ZERO + ms(1200),
        })
        .build();
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    for w in chain.windows(2) {
        assert_eq!(
            w[1].round().get(),
            w[0].round().get() + 1,
            "round gap in the committed chain"
        );
    }
    assert!(chain.len() > 30);
}

#[test]
fn commits_catch_up_after_intermittent_synchrony() {
    // "Even if the network is only intermittently synchronous, the
    // system will maintain a constant throughput": two async windows,
    // then compare the total committed rounds with elapsed time.
    let mut builder = ClusterBuilder::new(4)
        .seed(3)
        .protocol_delays(ms(60), SimDuration::ZERO);
    for i in 0..2u64 {
        builder = builder.policy(AsyncWindow {
            from: SimTime::ZERO + ms(300 + i * 1000),
            until: SimTime::ZERO + ms(800 + i * 1000),
        });
    }
    let mut cluster = builder.build();
    cluster.run_for(SimDuration::from_secs(3));
    let committed = cluster.min_committed_round();
    // 3 s at 20 ms/round = 150 rounds if fully synchronous; with 1 s of
    // asynchrony total, expect on the order of 100 — far from stalled.
    assert!(committed > 80, "committed only {committed} rounds");
}

#[test]
fn every_honest_party_enters_every_round() {
    let mut cluster = ClusterBuilder::new(4).seed(4).build();
    cluster.run_for(SimDuration::from_secs(1));
    for node in 0..4 {
        let entered: Vec<u64> = cluster
            .events_of(node)
            .filter_map(|o| match o.output {
                NodeEvent::EnteredRound { round, .. } => Some(round.get()),
                _ => None,
            })
            .collect();
        assert!(entered.len() > 40);
        for (i, r) in entered.iter().enumerate() {
            assert_eq!(*r, i as u64 + 1, "node {node} skipped a round");
        }
    }
}

#[test]
fn degenerate_single_node_subnet_commits_alone() {
    // n = 1 ⇒ t = 0, every quorum is 1: the lone party is always the
    // leader and immediately satisfies every quorum itself. Without a
    // governor it could run unboundedly fast (the paper's reason for
    // ε: "setting it to a non-zero value will keep the protocol from
    // running 'too fast'"), so pace rounds at ε = 1 ms.
    let mut cluster = ClusterBuilder::new(1)
        .seed(9)
        .protocol_delays(ms(10), ms(1))
        .build();
    cluster.run_for(SimDuration::from_millis(100));
    let committed = cluster.min_committed_round();
    assert!((80..=101).contains(&committed), "≈1 round/ms: {committed}");
    cluster.assert_safety();
}

#[test]
fn two_node_subnet_requires_both() {
    // n = 2 ⇒ t = 0: both signatures are needed for every quorum.
    let mut cluster = ClusterBuilder::new(2).seed(9).build();
    cluster.run_for(SimDuration::from_secs(1));
    cluster.assert_safety();
    assert!(cluster.min_committed_round() > 10);
}

#[test]
fn commit_latency_is_3_delta_in_steady_state() {
    let mut cluster = ClusterBuilder::new(4).seed(5).build();
    cluster.run_for(SimDuration::from_secs(2));
    // Latency from the proposer's own `Proposed` event to each commit
    // must be exactly 3δ = 30 ms in the synchronous steady state.
    let mut proposed_at = std::collections::HashMap::new();
    for node in 0..cluster.n() {
        for o in cluster.events_of(node) {
            if let NodeEvent::Proposed { hash, .. } = o.output {
                proposed_at.entry(hash).or_insert(o.at.as_micros());
            }
        }
    }
    let mut checked = 0;
    for o in cluster.events_of(0).collect::<Vec<_>>() {
        if let NodeEvent::Committed { block } = &o.output {
            if block.round().get() <= 1 {
                continue;
            }
            let p = proposed_at[&block.hash()];
            let latency = o.at.as_micros() - p;
            assert_eq!(
                latency,
                30_000,
                "round {}: latency {latency}µs ≠ 3δ",
                block.round()
            );
            checked += 1;
        }
    }
    assert!(checked > 50);
}
