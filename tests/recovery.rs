//! Crash–recovery acceptance: a replica taken down mid-run by the fault
//! plan restarts from its checkpoint + WAL, detects from round-tagged
//! adverts that it fell behind, fetches a *certified* catch-up package
//! from a peer, and contributes again — all without replaying the
//! missed rounds artifact-by-artifact, and without trusting the serving
//! peer (forged packages are rejected and the requester rotates).

use icc_core::cluster::ClusterBuilder;
use icc_core::{BlockPolicy, NodeEvent};
use icc_gossip::{gossip_cluster, GossipConfig, GossipNode, Overlay};
use icc_sim::delay::FixedDelay;
use icc_sim::FaultPlan;
use icc_types::{NodeIndex, SimDuration, SimTime};
use std::cell::Cell;
use std::sync::Arc;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn at(v: u64) -> SimTime {
    SimTime::ZERO + ms(v)
}

/// All proposals travel by advert/request so every peer's round-tagged
/// adverts keep flowing — the behind-detector's input.
fn config() -> GossipConfig {
    GossipConfig {
        inline_threshold: 0,
        ..GossipConfig::default()
    }
}

fn builder(n: usize, seed: u64) -> ClusterBuilder {
    ClusterBuilder::new(n)
        .seed(seed)
        .network(FixedDelay::new(ms(10)))
        .protocol_delays(ms(60), SimDuration::ZERO)
        .checkpoint_interval(8)
}

/// The ISSUE's acceptance scenario: n = 4, one replica crashed for ≥ 20
/// rounds, restarts, catches up via certified packages, and rejoins.
#[test]
fn restart_catches_up_via_certified_packages() {
    let overlay = Overlay::full_mesh(4);
    let plan = FaultPlan::new().crash_between(NodeIndex::new(3), at(1000), at(4000));
    let mut cluster = gossip_cluster(builder(4, 21).fault_plan(plan), overlay, config());
    cluster.run_for(SimDuration::from_secs(10));

    // The replica restarted once and caught up via certified packages;
    // no honest package was rejected.
    let rec = cluster.recovery_stats(3);
    assert_eq!(rec.restarts, 1, "{rec:?}");
    assert!(rec.catch_up_applied >= 1, "{rec:?}");
    assert_eq!(rec.catch_up_rejected, 0, "{rec:?}");
    assert!(rec.catch_up_bytes > 0, "{rec:?}");
    assert!(rec.wal_appends > 0, "{rec:?}");
    assert!(rec.checkpoints >= 1, "{rec:?}");
    // Down for 3 s at ~60 ms+ per round: it skipped well over 20 rounds,
    // and the catch-up jumped over them rather than replaying them.
    assert!(rec.rounds_behind_total >= 20, "{rec:?}");

    // The jump is observable in the event trace.
    let caught_up: Vec<(u64, u64)> = cluster
        .events_of(3)
        .filter_map(|o| match o.output {
            NodeEvent::CaughtUp {
                from_round,
                to_round,
            } => Some((from_round.get(), to_round.get())),
            _ => None,
        })
        .collect();
    assert!(!caught_up.is_empty(), "no CaughtUp event on node 3");

    // Zero full-artifact replay: the restored node verified *less* than
    // an always-up peer (certificates instead of every share), not more.
    let v3 = cluster.pool_stats(3).verify_calls;
    let v0 = cluster.pool_stats(0).verify_calls;
    assert!(v3 < v0, "restored node re-verified history: {v3} vs {v0}");

    // It rejoined: committed frontier within a few rounds of the peers.
    let r3 = cluster.committed_round(3);
    let r0 = cluster.committed_round(0);
    assert!(r0.abs_diff(r3) <= 3, "node 3 still behind: {r3} vs {r0}");
    assert!(r0 > 50, "mesh barely progressed: {r0}");
    cluster.assert_safety();

    // The counters surface through the simulation metrics.
    let summary = cluster.metrics_summary();
    assert_eq!(summary.recovery.restarts, 1);
    assert!(summary.recovery.catch_up_applied >= 1);
    assert!(summary.recovery.checkpoints >= 4, "{:?}", summary.recovery);
}

/// A Byzantine peer serves forged catch-up packages. The restored
/// replica rejects them (certificate verification fails), rotates to
/// another advertiser, and catches up from an honest peer.
#[test]
fn forged_catch_up_rejected_then_honest_peer_serves() {
    let overlay = Arc::new(Overlay::full_mesh(4));
    let cfg = config();
    let plan = FaultPlan::new().crash_between(NodeIndex::new(3), at(1000), at(4000));
    // Nodes 1 and 2 forge the finalization signature in every package
    // they serve; node 0 is honest. (The forgers are honest in every
    // *other* respect, so safety and liveness are untouched.)
    let idx = Cell::new(0usize);
    let mut cluster = builder(4, 22).fault_plan(plan).build_with(move |core| {
        let i = idx.get();
        idx.set(i + 1);
        let node = GossipNode::new(core, Arc::clone(&overlay), cfg);
        if i == 1 || i == 2 {
            node.with_forged_catch_up()
        } else {
            node
        }
    });
    cluster.run_for(SimDuration::from_secs(10));

    let rec = cluster.recovery_stats(3);
    assert_eq!(rec.restarts, 1, "{rec:?}");
    assert!(
        rec.catch_up_rejected >= 1,
        "forged packages never offered: {rec:?}"
    );
    assert!(
        rec.catch_up_applied >= 1,
        "honest peer never reached: {rec:?}"
    );
    // The forged packages were rejected *by verification*, visibly.
    assert!(cluster.pool_stats(3).rejected >= 1);

    // Despite the Byzantine servers, the replica rejoined.
    let r3 = cluster.committed_round(3);
    let r0 = cluster.committed_round(0);
    assert!(r0.abs_diff(r3) <= 3, "node 3 still behind: {r3} vs {r0}");
    cluster.assert_safety();
}

/// Rolling restarts: every node except one goes down and comes back at
/// staggered times. The mesh keeps quorum throughout (one node down at
/// a time), everyone who restarted catches up, and all chains agree.
#[test]
fn rolling_restarts_preserve_agreement() {
    let overlay = Overlay::random_regular(7, 4, 23);
    let mut plan = FaultPlan::new();
    for i in 0..6u32 {
        let down = 1000 + 1500 * u64::from(i);
        plan = plan.crash_between(NodeIndex::new(i), at(down), at(down + 1200));
    }
    let b = builder(7, 23).fault_plan(plan).block_policy(BlockPolicy {
        max_commands: 100,
        max_bytes: 1 << 20,
        purge_depth: None,
    });
    let mut cluster = gossip_cluster(b, overlay, config());
    cluster.inject_commands(SimTime::ZERO, ms(500), 20, 512);
    cluster.run_for(SimDuration::from_secs(14));

    for i in 0..6 {
        let rec = cluster.recovery_stats(i);
        assert_eq!(rec.restarts, 1, "node {i}: {rec:?}");
    }
    let total: u64 = (0..6)
        .map(|i| cluster.recovery_stats(i).catch_up_applied)
        .sum();
    assert!(total >= 3, "few catch-ups across the rolling wave: {total}");
    let r0 = cluster.committed_round(6);
    for i in 0..6 {
        let ri = cluster.committed_round(i);
        assert!(r0.abs_diff(ri) <= 3, "node {i} behind: {ri} vs {r0}");
    }
    cluster.assert_safety();
}
