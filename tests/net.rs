//! Backend parity: the same `GossipNode` (ICC1 gossip + consensus
//! core) must reach consensus unchanged whether the driver's transport
//! is in-process channels or real kernel TCP sockets — the whole point
//! of the sans-IO split. The discrete-event backend is exercised by
//! `icc1_gossip.rs`; these tests cover the two wall-clock backends.

use icc_core::byzantine::Behavior;
use icc_core::consensus::ConsensusCore;
use icc_core::delays::StaticDelays;
use icc_core::events::NodeEvent;
use icc_core::keys::generate_keys;
use icc_crypto::Hash256;
use icc_gossip::{GossipConfig, GossipNode, Overlay};
use icc_net::{ClusterSpec, NetOptions, TcpTransport};
use icc_sim::engine::OutputRecord;
use icc_sim::live::run_live;
use icc_sim::runtime::drive;
use icc_types::{Command, NodeIndex, SimDuration, SubnetConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 4;

fn gossip_nodes(seed: u64) -> Vec<GossipNode> {
    let overlay = Arc::new(Overlay::full_mesh(N));
    generate_keys(SubnetConfig::new(N), seed)
        .into_iter()
        .map(|k| {
            GossipNode::new(
                ConsensusCore::new(
                    k,
                    // Paced well below channel/localhost latency so a
                    // 2-wall-second run yields plenty of rounds.
                    StaticDelays::new(SimDuration::from_millis(200), SimDuration::from_millis(20)),
                    Behavior::Honest,
                ),
                Arc::clone(&overlay),
                GossipConfig::default(),
            )
        })
        .collect()
}

/// Rebuilds per-node committed chains and asserts agreement on the
/// common prefix; returns the shortest chain length.
fn assert_chains_agree(outputs: &[OutputRecord<NodeEvent>]) -> usize {
    let mut chains: Vec<Vec<Hash256>> = vec![Vec::new(); N];
    for o in outputs {
        if let NodeEvent::Committed { block } = &o.output {
            chains[o.node.as_usize()].push(block.hash());
        }
    }
    let min_len = chains.iter().map(Vec::len).min().unwrap();
    for c in &chains[1..] {
        assert_eq!(&c[..min_len], &chains[0][..min_len], "chains diverged");
    }
    min_len
}

#[test]
fn gossip_cluster_over_channel_backend() {
    let outputs = run_live(gossip_nodes(41), Duration::from_secs(2), |handle| {
        for i in 0..20 {
            for node in 0..N {
                handle.inject(
                    NodeIndex::new(node as u32),
                    Command::new(format!("chan {node} #{i}").into_bytes()),
                );
            }
        }
    });
    let blocks = assert_chains_agree(&outputs);
    assert!(blocks > 0, "channel backend committed no blocks");
}

#[test]
fn gossip_cluster_over_tcp_backend() {
    // Bind `:0` listeners first so the spec can name real ports, then
    // hand each listener to its transport (no bind race).
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    let spec = ClusterSpec::from_addrs(
        listeners
            .iter()
            .map(|l| l.local_addr().expect("bound"))
            .collect(),
    )
    .expect("spec");

    let (out_tx, out_rx) = std::sync::mpsc::channel::<OutputRecord<NodeEvent>>();
    let mut handles = Vec::new();
    let mut threads = Vec::new();
    let start = Instant::now();
    for (i, (node, listener)) in gossip_nodes(42).into_iter().zip(listeners).enumerate() {
        let me = NodeIndex::new(i as u32);
        let transport: TcpTransport<_, _> =
            TcpTransport::with_listener(listener, &spec, me, NetOptions::default());
        handles.push(transport.handle());
        let out = out_tx.clone();
        threads.push(std::thread::spawn(move || {
            drive(node, transport, start, |rec| {
                let _ = out.send(rec);
            })
        }));
    }
    drop(out_tx);

    for (i, h) in handles.iter().enumerate() {
        for j in 0..20 {
            assert!(h.inject(Command::new(format!("tcp {i} #{j}").into_bytes())));
        }
    }
    std::thread::sleep(Duration::from_secs(2));
    for h in &handles {
        h.stop();
    }
    let nodes: Vec<GossipNode> = threads
        .into_iter()
        .map(|t| t.join().expect("driver thread"))
        .collect();
    let outputs: Vec<OutputRecord<NodeEvent>> = out_rx.into_iter().collect();

    let blocks = assert_chains_agree(&outputs);
    assert!(blocks > 0, "TCP backend committed no blocks");
    // Every replica's core advanced — liveness under the real sockets.
    for (i, node) in nodes.iter().enumerate() {
        assert!(
            node.core().committed_round().get() > 0,
            "replica {i} never committed over TCP"
        );
    }
}

// ---------------------------------------------------------------------
// Peer lifecycle: eviction of departed members from the gossip layer.
// ---------------------------------------------------------------------

/// Directional throttle for the eviction scenario below: node 0 is cut
/// off in both directions (everything it sends, and everything sent to
/// it, is held until `heal`) — *except* that node 3's messages reach it
/// normally for the first `advert_window`. Node 0 therefore accumulates
/// body requests whose **only** advertiser is node 3.
struct LopsidedCut {
    heal: icc_types::SimTime,
    advert_window: icc_types::SimTime,
}

impl icc_sim::policy::DeliveryPolicy for LopsidedCut {
    fn deliver_at(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        sent: icc_types::SimTime,
        tentative: icc_types::SimTime,
    ) -> icc_types::SimTime {
        let zero = NodeIndex::new(0);
        let three = NodeIndex::new(3);
        if from == zero || (to == zero && !(from == three && sent < self.advert_window)) {
            tentative.max(self.heal)
        } else {
            tentative
        }
    }
}

/// Regression: the retry sweep must stop tracking artifacts whose only
/// advertiser *departed the membership*. Before the eviction hook, such
/// `PendingRequest` entries lingered forever — `peer_up` suppressed the
/// actual retransmissions, but the entries (and their growing backoff
/// state) kept the sweep timer armed for the rest of the run.
#[test]
fn departed_peer_is_evicted_from_retry_state() {
    use icc_core::cluster::ClusterBuilder;
    use icc_sim::delay::FixedDelay;
    use icc_sim::FaultPlan;

    let ms = |v: u64| SimDuration::from_millis(v);
    let at = |v: u64| icc_types::SimTime::ZERO + ms(v);

    let mut cluster = icc_gossip::gossip_cluster(
        ClusterBuilder::new(N)
            .seed(5)
            .network(FixedDelay::new(ms(10)))
            .protocol_delays(ms(60), SimDuration::ZERO)
            .policy(LopsidedCut {
                heal: at(3500),
                advert_window: at(500),
            })
            // Node 3 leaves the membership mid-cut, while node 0 still
            // owes it body requests.
            .fault_plan(FaultPlan::new().depart_at(NodeIndex::new(3), at(1500))),
        Overlay::full_mesh(N),
        GossipConfig {
            // Every proposal travels advert → request → deliver, so the
            // cut-off node is guaranteed to build up pending requests.
            inline_threshold: 0,
            ..GossipConfig::default()
        },
    );

    // Before the departure: node 0 holds pending body requests, all of
    // them advertised solely by node 3 (its requests out never arrive).
    cluster.run_until(at(1400));
    let stuck = cluster.sim.node(0).pending_requests();
    assert!(
        stuck > 0,
        "scenario must produce node-3-only pending requests before the depart"
    );
    assert_eq!(
        cluster.committed_round(0),
        0,
        "the cut-off node must not have committed past genesis yet"
    );

    // After the departure: the eviction hook stripped node 3 from every
    // advertiser list and dropped the now-unservable entries outright.
    cluster.run_until(at(1600));
    assert_eq!(
        cluster.sim.node(0).pending_requests(),
        0,
        "pending requests advertised only by the departed peer must be evicted"
    );

    // The cluster heals and node 0 rejoins; the survivors (exactly the
    // n − t quorum) resume finalizing and node 0 catches up from them.
    cluster.run_until(at(8000));
    cluster.assert_safety();
    assert!(
        cluster.committed_round(0) > 10,
        "cut-off node must catch up after the heal (got {})",
        cluster.committed_round(0)
    );
    assert_eq!(
        cluster.sim.node(0).pending_requests(),
        0,
        "no retry state may survive once the chain passes the stale rounds"
    );
}
