//! Backend parity: the same `GossipNode` (ICC1 gossip + consensus
//! core) must reach consensus unchanged whether the driver's transport
//! is in-process channels or real kernel TCP sockets — the whole point
//! of the sans-IO split. The discrete-event backend is exercised by
//! `icc1_gossip.rs`; these tests cover the two wall-clock backends.

use icc_core::byzantine::Behavior;
use icc_core::consensus::ConsensusCore;
use icc_core::delays::StaticDelays;
use icc_core::events::NodeEvent;
use icc_core::keys::generate_keys;
use icc_crypto::Hash256;
use icc_gossip::{GossipConfig, GossipNode, Overlay};
use icc_net::{ClusterSpec, NetOptions, TcpTransport};
use icc_sim::engine::OutputRecord;
use icc_sim::live::run_live;
use icc_sim::runtime::drive;
use icc_types::{Command, NodeIndex, SimDuration, SubnetConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 4;

fn gossip_nodes(seed: u64) -> Vec<GossipNode> {
    let overlay = Arc::new(Overlay::full_mesh(N));
    generate_keys(SubnetConfig::new(N), seed)
        .into_iter()
        .map(|k| {
            GossipNode::new(
                ConsensusCore::new(
                    k,
                    // Paced well below channel/localhost latency so a
                    // 2-wall-second run yields plenty of rounds.
                    StaticDelays::new(SimDuration::from_millis(200), SimDuration::from_millis(20)),
                    Behavior::Honest,
                ),
                Arc::clone(&overlay),
                GossipConfig::default(),
            )
        })
        .collect()
}

/// Rebuilds per-node committed chains and asserts agreement on the
/// common prefix; returns the shortest chain length.
fn assert_chains_agree(outputs: &[OutputRecord<NodeEvent>]) -> usize {
    let mut chains: Vec<Vec<Hash256>> = vec![Vec::new(); N];
    for o in outputs {
        if let NodeEvent::Committed { block } = &o.output {
            chains[o.node.as_usize()].push(block.hash());
        }
    }
    let min_len = chains.iter().map(Vec::len).min().unwrap();
    for c in &chains[1..] {
        assert_eq!(&c[..min_len], &chains[0][..min_len], "chains diverged");
    }
    min_len
}

#[test]
fn gossip_cluster_over_channel_backend() {
    let outputs = run_live(gossip_nodes(41), Duration::from_secs(2), |handle| {
        for i in 0..20 {
            for node in 0..N {
                handle.inject(
                    NodeIndex::new(node as u32),
                    Command::new(format!("chan {node} #{i}").into_bytes()),
                );
            }
        }
    });
    let blocks = assert_chains_agree(&outputs);
    assert!(blocks > 0, "channel backend committed no blocks");
}

#[test]
fn gossip_cluster_over_tcp_backend() {
    // Bind `:0` listeners first so the spec can name real ports, then
    // hand each listener to its transport (no bind race).
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    let spec = ClusterSpec::from_addrs(
        listeners
            .iter()
            .map(|l| l.local_addr().expect("bound"))
            .collect(),
    )
    .expect("spec");

    let (out_tx, out_rx) = std::sync::mpsc::channel::<OutputRecord<NodeEvent>>();
    let mut handles = Vec::new();
    let mut threads = Vec::new();
    let start = Instant::now();
    for (i, (node, listener)) in gossip_nodes(42).into_iter().zip(listeners).enumerate() {
        let me = NodeIndex::new(i as u32);
        let transport: TcpTransport<_, _> =
            TcpTransport::with_listener(listener, &spec, me, NetOptions::default());
        handles.push(transport.handle());
        let out = out_tx.clone();
        threads.push(std::thread::spawn(move || {
            drive(node, transport, start, |rec| {
                let _ = out.send(rec);
            })
        }));
    }
    drop(out_tx);

    for (i, h) in handles.iter().enumerate() {
        for j in 0..20 {
            assert!(h.inject(Command::new(format!("tcp {i} #{j}").into_bytes())));
        }
    }
    std::thread::sleep(Duration::from_secs(2));
    for h in &handles {
        h.stop();
    }
    let nodes: Vec<GossipNode> = threads
        .into_iter()
        .map(|t| t.join().expect("driver thread"))
        .collect();
    let outputs: Vec<OutputRecord<NodeEvent>> = out_rx.into_iter().collect();

    let blocks = assert_chains_agree(&outputs);
    assert!(blocks > 0, "TCP backend committed no blocks");
    // Every replica's core advanced — liveness under the real sockets.
    for (i, node) in nodes.iter().enumerate() {
        assert!(
            node.core().committed_round().get() > 0,
            "replica {i} never committed over TCP"
        );
    }
}
