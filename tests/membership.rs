//! Dynamic membership: epoch boundaries, beacon-key resharing, and the
//! cross-epoch certificate chain (ROADMAP item 5).
//!
//! The member set of the subnet changes only at predetermined boundary
//! rounds of an [`EpochSchedule`]. At each boundary the beacon key is
//! *reshared* — the group public key (and so the beacon sequence) is
//! preserved, while the share vector moves to the new member positions —
//! and the pool classifier switches to the new epoch's signer set and
//! quorums. These tests drive real clusters across boundaries (join,
//! leave, replace, no-op reshare), then attack the machinery: forged
//! reshare dealings, stale-epoch shares, and forged links in the
//! cross-epoch catch-up certificate chain must all be rejected.

use icc_core::byzantine::Behavior;
use icc_core::cluster::ClusterBuilder;
use icc_core::consensus::ConsensusCore;
use icc_core::delays::StaticDelays;
use icc_core::epoch::{EpochSchedule, EpochSpec};
use icc_core::events::NodeEvent;
use icc_core::keys::generate_keys_with_schedule;
use icc_core::recovery::CatchUpError;
use icc_crypto::dkg::{reshare_aggregate, ReshareDealing};
use icc_crypto::sig::PublicKey;
use icc_crypto::threshold::Dealer;
use icc_crypto::CryptoError;
use icc_types::{Round, SimDuration, SimTime, SubnetConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Rounds in which `node` broadcast its own proposal.
fn proposed_rounds(cluster: &icc_core::cluster::Cluster, node: usize) -> Vec<Round> {
    cluster
        .events_of(node)
        .filter_map(|o| match &o.output {
            NodeEvent::Proposed { round, .. } => Some(*round),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Boundary acceptance: join / leave / replace / no-op reshare.
// ---------------------------------------------------------------------

#[test]
fn join_at_boundary_admits_new_member() {
    // Universe of 5; node 4 joins at round 25.
    let schedule = EpochSchedule::new(vec![
        EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3]),
        EpochSpec::new(Round::new(25), vec![0, 1, 2, 3, 4]),
    ]);
    let mut cluster = ClusterBuilder::new(5)
        .seed(41)
        .with_epochs(schedule)
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    cluster.assert_safety();
    assert!(
        cluster.min_committed_round() > 60,
        "cluster must keep committing across the boundary (got {})",
        cluster.min_committed_round()
    );

    // Every node crossed into epoch 1 at the boundary round.
    for node in 0..5 {
        assert_eq!(
            cluster.epochs_entered(node),
            vec![(Round::new(25), 1)],
            "node {node} must report the boundary"
        );
    }

    // The joiner proposed only after the boundary — and did propose
    // (5 members, >100 rounds: rank 0 lands on everyone eventually).
    let rounds = proposed_rounds(&cluster, 4);
    assert!(!rounds.is_empty(), "joined member must propose in epoch 1");
    assert!(
        rounds.iter().all(|r| *r >= Round::new(25)),
        "non-member must not propose before joining: {rounds:?}"
    );
}

#[test]
fn leave_at_boundary_demotes_member_to_observer() {
    let schedule = EpochSchedule::new(vec![
        EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3, 4]),
        EpochSpec::new(Round::new(25), vec![0, 1, 2, 3]),
    ]);
    let mut cluster = ClusterBuilder::new(5)
        .seed(42)
        .with_epochs(schedule)
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    cluster.assert_safety();
    assert!(cluster.min_committed_round() > 60);

    // The departed node proposed before the boundary, never after.
    let rounds = proposed_rounds(&cluster, 4);
    assert!(
        !rounds.is_empty(),
        "node 4 was a member of epoch 0 and must have proposed"
    );
    assert!(
        rounds.iter().all(|r| *r < Round::new(25)),
        "departed member must not propose in epoch 1: {rounds:?}"
    );

    // ...but it still observes: certified artifacts keep reaching it,
    // so its committed chain keeps growing past the boundary.
    assert!(
        cluster.committed_round(4) > 60,
        "observer must keep committing (got {})",
        cluster.committed_round(4)
    );
}

#[test]
fn replace_at_boundary_swaps_members() {
    let schedule = EpochSchedule::new(vec![
        EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3]),
        EpochSpec::new(Round::new(25), vec![0, 1, 2, 4]),
    ]);
    let mut cluster = ClusterBuilder::new(5)
        .seed(43)
        .with_epochs(schedule)
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    cluster.assert_safety();
    assert!(cluster.min_committed_round() > 60);

    let old = proposed_rounds(&cluster, 3);
    let new = proposed_rounds(&cluster, 4);
    assert!(old.iter().all(|r| *r < Round::new(25)));
    assert!(!new.is_empty() && new.iter().all(|r| *r >= Round::new(25)));
}

#[test]
fn noop_reshare_preserves_progress() {
    // Same member set on both sides of the boundary: pure key rotation.
    let schedule = EpochSchedule::new(vec![
        EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3]),
        EpochSpec::new(Round::new(20), vec![0, 1, 2, 3]),
    ]);
    let mut cluster = ClusterBuilder::new(4)
        .seed(44)
        .with_epochs(schedule)
        .build();
    cluster.run_for(SimDuration::from_secs(3));
    cluster.assert_safety();
    assert!(cluster.min_committed_round() > 50);
    for node in 0..4 {
        assert_eq!(cluster.epochs_entered(node), vec![(Round::new(20), 1)]);
    }
}

#[test]
fn multi_boundary_schedule_rotates_through_members() {
    // Three boundaries walking the member set around the universe.
    let schedule = EpochSchedule::new(vec![
        EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3]),
        EpochSpec::new(Round::new(20), vec![0, 1, 2, 4]),
        EpochSpec::new(Round::new(40), vec![0, 1, 3, 4]),
        EpochSpec::new(Round::new(60), vec![0, 1, 2, 3, 4]),
    ]);
    let mut cluster = ClusterBuilder::new(5)
        .seed(45)
        .with_epochs(schedule)
        .build();
    cluster.run_for(SimDuration::from_secs(5));
    cluster.assert_safety();
    assert!(
        cluster.min_committed_round() > 90,
        "cluster must survive all three reshares (got {})",
        cluster.min_committed_round()
    );
    assert_eq!(
        cluster.epochs_entered(0),
        vec![
            (Round::new(20), 1),
            (Round::new(40), 2),
            (Round::new(60), 3)
        ]
    );
    // Locally-finalized boundary crossings show up in the recovery
    // counters of every node that crossed them.
    assert!(cluster.recovery_stats(0).epoch_transitions >= 3);
}

// ---------------------------------------------------------------------
// Adversarial matrix.
// ---------------------------------------------------------------------

/// Forged reshare dealings must fail the binding check one by one and
/// poison any aggregate that includes them.
#[test]
fn forged_reshare_dealings_rejected_and_counted() {
    let mut rng = StdRng::seed_from_u64(9);
    let old = Dealer::deal(2, 4, &mut rng);
    let old_public = old.public();

    let honest: Vec<ReshareDealing> = old
        .signers()
        .iter()
        .map(|s| ReshareDealing::deal(s, 2, 4, &mut rng))
        .collect();
    assert!(honest.iter().all(|d| d.verify_binding(&old_public, 2)));

    // An unrelated instance with the same shape: its signers are not
    // registered parties of `old`, and its key material is alien.
    let alien = Dealer::deal(2, 4, &mut rng);

    let mut forged = Vec::new();
    // (a) Dealer index outside the old registry.
    let mut d = honest[0].clone();
    d.dealer = 17;
    forged.push(d);
    // (b) Registered index, alien secret: dealt by a signer of a
    // different instance (a made-up share).
    forged.push(ReshareDealing::deal(&alien.signer(1), 2, 4, &mut rng));
    // (c) Claimed public share that is not the registered one.
    let mut d = honest[2].clone();
    d.dealer_public = alien.public().global_key();
    forged.push(d);
    // (d) Tampered sub-share commitments: polynomial no longer passes
    // through the claimed share at zero.
    let mut d = honest[3].clone();
    d.share_publics[0] = PublicKey::from_value(d.share_publics[0].value() ^ 1);
    forged.push(d);

    let rejected = forged
        .iter()
        .filter(|d| !d.verify_binding(&old_public, 2))
        .count();
    assert_eq!(rejected, forged.len(), "every forgery must be rejected");

    // Any aggregate containing a forgery errors; the honest set works
    // and reproduces the old group key. (Aggregation truncates to the
    // lowest `old.threshold()` dealer indices, so pick dealers 0 and 2:
    // the forged dealer-2 dealing is guaranteed into the combined set.)
    let poisoned = vec![honest[0].clone(), forged[2].clone()];
    match reshare_aggregate(&old_public, 2, &poisoned) {
        Err(CryptoError::InvalidShare { .. }) => {}
        other => panic!("poisoned aggregate must fail InvalidShare, got {other:?}"),
    }
    let new = reshare_aggregate(&old_public, 2, &honest).expect("honest reshare");
    assert_eq!(
        new.public().global_key(),
        old_public.global_key(),
        "reshare must preserve the group key"
    );
}

/// A share produced with old-epoch key material must not verify under
/// the new epoch's commitments, even at a position both epochs use.
#[test]
fn old_epoch_shares_refused_in_new_epoch() {
    let schedule = EpochSchedule::new(vec![
        EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3]),
        EpochSpec::new(Round::new(10), vec![0, 1, 2, 4]),
    ]);
    let keys = generate_keys_with_schedule(SubnetConfig::new(5), 7, &schedule);
    let setup = &keys[0].setup;
    let msg = b"round-11-beacon-input";

    // Node 1 is a member of both epochs (position 1 in both). Its
    // epoch-0 share key is dead after the reshare: the new epoch's
    // commitment at position 1 is a fresh sub-share combination.
    let old_signer = keys[1].beacon_signer_for(Round::new(5)).unwrap();
    let new_epoch = &setup.epochs[1];
    let stale = old_signer.sign_share(msg);
    assert!(
        setup.epochs[0].beacon.verify_share(msg, &stale),
        "sanity: the share is valid in its own epoch"
    );
    assert!(
        !new_epoch.beacon.verify_share(msg, &stale),
        "old-epoch share must be refused in the new epoch"
    );

    // The genuine new-epoch share at the same position verifies.
    let fresh = keys[1]
        .beacon_signer_for(Round::new(10))
        .unwrap()
        .sign_share(msg);
    assert!(new_epoch.beacon.verify_share(msg, &fresh));

    // The departed node has no new-epoch signing handle at all.
    assert!(keys[3].beacon_signer_for(Round::new(10)).is_none());
    assert!(!keys[3].is_member_at(Round::new(10)));
}

/// Cross-epoch catch-up: the certificate chain must be complete and
/// every link must verify under the *outgoing* epoch's signer set; a
/// forged or missing link rejects the package wholesale.
#[test]
fn cross_epoch_catch_up_verifies_certificate_chain() {
    let schedule = EpochSchedule::new(vec![
        EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3]),
        EpochSpec::new(Round::new(15), vec![0, 1, 2, 4]),
        EpochSpec::new(Round::new(30), vec![0, 1, 3, 4]),
    ]);
    let mut cluster = ClusterBuilder::new(5)
        .seed(46)
        .with_epochs(schedule.clone())
        .build();
    cluster.run_for(SimDuration::from_secs(3));
    cluster.assert_safety();
    assert!(cluster.min_committed_round() > 40);

    // A package spanning genesis → current tip crosses both boundaries.
    let pkg = cluster
        .sim
        .node(0)
        .core()
        .build_catch_up_package(Round::GENESIS)
        .expect("server has a finalized chain");
    assert!(pkg.round() > Round::new(30));
    assert_eq!(
        pkg.transitions.iter().map(|t| t.epoch).collect::<Vec<_>>(),
        vec![1, 2],
        "one ascending link per crossed boundary"
    );
    for t in &pkg.transitions {
        let outgoing = &schedule.epochs()[t.epoch as usize - 1];
        let next = &schedule.epochs()[t.epoch as usize];
        assert!(
            t.round() >= outgoing.start_round && t.round() < next.start_round,
            "handoff block of epoch {} must lie in the outgoing epoch",
            t.epoch
        );
    }

    // A fresh replica of the same subnet, parked at genesis (epoch 0).
    let fresh = || {
        let keys = generate_keys_with_schedule(SubnetConfig::new(5), 46, &schedule)
            .into_iter()
            .nth(1)
            .unwrap();
        let mut core = ConsensusCore::new(
            keys,
            StaticDelays::new(ms(30), SimDuration::ZERO),
            Behavior::Honest,
        );
        core.start(SimTime::ZERO);
        core
    };
    let now = cluster.now();

    // Missing link: drop the epoch-1 transition.
    let mut core = fresh();
    let mut bad = pkg.clone();
    bad.transitions.remove(0);
    assert_eq!(
        core.apply_catch_up(&bad, now).unwrap_err(),
        CatchUpError::MissingTransition
    );

    // Forged link: a signature from the wrong domain.
    let mut bad = pkg.clone();
    bad.transitions[0].finalization.sig = bad.transitions[0].notarization.sig.clone();
    assert_eq!(
        core.apply_catch_up(&bad, now).unwrap_err(),
        CatchUpError::BadTransition
    );

    // Forged link: relabeled epoch number (chain out of order).
    let mut bad = pkg.clone();
    bad.transitions[0].epoch = 2;
    assert!(core.apply_catch_up(&bad, now).is_err());

    // Nothing installed by the rejected packages.
    assert_eq!(core.committed_round(), Round::GENESIS);
    assert_eq!(core.recovery_stats().catch_up_applied, 0);
    assert_eq!(core.recovery_stats().cross_epoch_catch_ups, 0);

    // The honest package fast-forwards the replica across both
    // boundaries in one certified hop.
    core.apply_catch_up(&pkg, now)
        .expect("honest package verifies");
    assert_eq!(core.committed_round(), pkg.round());
    let stats = core.recovery_stats();
    assert_eq!(stats.catch_up_applied, 1);
    assert_eq!(stats.cross_epoch_catch_ups, 1);
    assert_eq!(stats.epoch_transitions, 2, "both links newly archived");

    // The caught-up replica can now serve the chain onward itself.
    let relay = core
        .build_catch_up_package(Round::GENESIS)
        .expect("caught-up replica holds the transition chain");
    assert_eq!(relay.transitions, pkg.transitions);
    let mut other = fresh();
    other
        .apply_catch_up(&relay, now)
        .expect("relayed package verifies");
}

// ---------------------------------------------------------------------
// Property: every valid schedule preserves safety and liveness.
// ---------------------------------------------------------------------

/// Random valid membership schedules over a 5-node universe: member
/// sets of size ≥ 3, boundaries 12–20 rounds apart.
/// Decodes a drawn `(masks, gaps)` pair into a valid schedule: each
/// epoch's member set is a 5-bit mask, padded up to ≥ 3 members with the
/// lowest absent indices; boundaries are 12–20 rounds apart.
fn schedule_from_draw(masks: &[u32], gaps: &[u64]) -> EpochSchedule {
    let mut specs = Vec::new();
    let mut start = 0u64;
    for (i, mask) in masks.iter().enumerate() {
        let mut members: Vec<u32> = (0..5).filter(|i| mask & (1 << i) != 0).collect();
        let mut next = 0;
        while members.len() < 3 {
            if !members.contains(&next) {
                members.push(next);
            }
            next += 1;
        }
        specs.push(EpochSpec::new(Round::new(start), members));
        start += gaps[i.min(gaps.len() - 1)];
    }
    EpochSchedule::new(specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any valid membership schedule preserves agreement: honest nodes
    /// never commit conflicting blocks, across any number of reshares,
    /// and the cluster keeps finalizing past the last boundary.
    #[test]
    fn any_valid_schedule_preserves_safety(
        masks in proptest::collection::vec(0u32..32, 2..5usize),
        gaps in proptest::collection::vec(12u64..21, 3usize),
        seed in 0u64..500,
    ) {
        let schedule = schedule_from_draw(&masks, &gaps);
        let last_boundary = schedule.epochs().last().unwrap().start_round;
        let mut cluster = ClusterBuilder::new(5)
            .seed(seed)
            .with_epochs(schedule)
            .build();
        cluster.run_for(SimDuration::from_secs(3));
        cluster.assert_safety();
        prop_assert!(
            cluster.min_committed_round() > last_boundary.get() + 10,
            "cluster stalled: committed {} with last boundary {}",
            cluster.min_committed_round(),
            last_boundary
        );
    }
}
