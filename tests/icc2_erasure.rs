//! Protocol ICC2: erasure-coded dissemination must preserve all
//! guarantees at `O(S)` bits per party and the paper's `3δ`/`4δ`
//! timing.

use icc_core::cluster::ClusterBuilder;
use icc_core::Behavior;
use icc_core::BlockPolicy;
use icc_erasure::{icc2_cluster, Icc2Config};
use icc_sim::delay::FixedDelay;
use icc_tests::{assert_chains_consistent, committed_commands};
use icc_types::{SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn builder(n: usize, seed: u64) -> ClusterBuilder {
    ClusterBuilder::new(n)
        .seed(seed)
        .network(FixedDelay::new(ms(10)))
        .protocol_delays(ms(90), SimDuration::ZERO)
}

#[test]
fn commits_with_rbc_dissemination() {
    let mut cluster = icc2_cluster(
        builder(7, 1),
        Icc2Config {
            inline_threshold: 0,
        },
    );
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20, "committed {}", chain.len());
}

#[test]
fn round_time_is_3_delta_latency_4_delta() {
    let mut cluster = icc2_cluster(
        builder(4, 2),
        Icc2Config {
            inline_threshold: 0,
        },
    );
    cluster.run_for(SimDuration::from_secs(2));
    assert_chains_consistent(&cluster);
    let stats = cluster.round_stats(0);
    let durations: Vec<u64> = stats
        .iter()
        .filter(|(r, _, _)| r.get() > 1)
        .map(|(_, d, _)| d.as_micros())
        .collect();
    let mean = durations.iter().sum::<u64>() / durations.len() as u64;
    assert!(
        (29_000..32_000).contains(&mean),
        "ICC2 round time {mean}µs ≉ 3δ = 30ms"
    );
}

#[test]
fn large_commands_commit_through_rbc() {
    let b = builder(7, 3).block_policy(BlockPolicy {
        max_commands: 100,
        max_bytes: 1 << 20,
        purge_depth: None,
    });
    let mut cluster = icc2_cluster(b, Icc2Config::default());
    cluster.inject_commands(SimTime::ZERO, ms(500), 15, 65536);
    cluster.run_for(SimDuration::from_secs(4));
    assert_chains_consistent(&cluster);
    assert_eq!(committed_commands(&cluster, 0).len(), 15);
    let sent = &cluster.sim.metrics().per_node()[0].sent_by_kind;
    assert!(
        sent.contains_key("rbc-fragment"),
        "kinds: {:?}",
        sent.keys()
    );
}

#[test]
fn per_party_traffic_beats_full_broadcast() {
    let policy = BlockPolicy {
        max_commands: 100,
        max_bytes: 512 << 10,
        purge_depth: None,
    };
    let mut icc0 = builder(13, 4).block_policy(policy).build();
    icc0.inject_commands(SimTime::ZERO, ms(500), 30, 65536);
    icc0.run_for(SimDuration::from_secs(3));
    let mean0 = icc0.sim.metrics().mean_node_bytes();

    let mut icc2c = icc2_cluster(builder(13, 4).block_policy(policy), Icc2Config::default());
    icc2c.inject_commands(SimTime::ZERO, ms(500), 30, 65536);
    icc2c.run_for(SimDuration::from_secs(3));
    let mean2 = icc2c.sim.metrics().mean_node_bytes();

    assert!(
        mean2 * 2.0 < mean0,
        "RBC should cut mean traffic at least 2x: icc0={mean0} icc2={mean2}"
    );
}

#[test]
fn crash_faults_tolerated_with_rbc() {
    let b = builder(7, 5).behaviors(Behavior::first_f(7, 2, Behavior::Crash));
    let mut cluster = icc2_cluster(
        b,
        Icc2Config {
            inline_threshold: 0,
        },
    );
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 10, "committed {}", chain.len());
}

#[test]
fn equivocating_dispersals_are_contained() {
    let b = builder(7, 6).behaviors(Behavior::first_f(7, 2, Behavior::Equivocate));
    let mut cluster = icc2_cluster(
        b,
        Icc2Config {
            inline_threshold: 0,
        },
    );
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 10, "committed {}", chain.len());
}
