//! Anomaly-detector integration tests (ISSUE 10): the rolling watcher
//! that powers the live admin plane's `/status` anomaly feed, observed
//! end-to-end through scripted fault-injection runs.
//!
//! Three scripted scenarios pin the detector's semantics on real
//! cluster span streams — the same streams `scenario` scans for its
//! report and each replica's embedded detector watches live:
//!
//! 1. A **flapping peer** (two crash/restart cycles inside the flap
//!    window) is flagged by the offline scan, naming the peer and the
//!    transition count.
//! 2. A **lost quorum** (two of four nodes down, f = 1) stalls the
//!    open round; the per-node detectors embedded in the consensus
//!    cores flag it *live* — during the run, via the gossip sweep
//!    tick, with no post-hoc analysis — and mirror the anomaly into
//!    the flight-recorder span ring.
//! 3. A node starved by `SlowLinks` falls behind over and over and
//!    rejoins by certified catch-up each time: a **catch-up storm**,
//!    flagged live by that node's own detector.

#![cfg(feature = "telemetry")]

use icc_core::cluster::ClusterBuilder;
use icc_gossip::{gossip_cluster, GossipConfig, Overlay};
use icc_sim::delay::FixedDelay;
use icc_sim::policy::SlowLinks;
use icc_sim::FaultPlan;
use icc_telemetry::{anomaly, AnomalyConfig, AnomalyKind, SpanKind};
use icc_types::{NodeIndex, SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn at(millis: u64) -> SimTime {
    SimTime::ZERO + ms(millis)
}

fn builder(n: usize, seed: u64) -> ClusterBuilder {
    ClusterBuilder::new(n)
        .seed(seed)
        .network(FixedDelay::new(ms(10)))
        .protocol_delays(ms(60), SimDuration::ZERO)
}

#[test]
fn flapping_peer_is_flagged_by_the_scan() {
    // Node 3 crashes and restarts three times inside the default 10 s
    // flap window. The engine records each lifecycle edge as a
    // NodeDown/NodeUp span, which is exactly what the detector folds
    // into per-peer transition counts — the first edge only sets the
    // baseline, leaving four counted transitions (the flap threshold).
    let plan = FaultPlan::new()
        .crash_between(NodeIndex::new(3), at(1000), at(1500))
        .crash_between(NodeIndex::new(3), at(2000), at(2500))
        .crash_between(NodeIndex::new(3), at(3000), at(3500));
    let mut cluster = builder(4, 5).fault_plan(plan).build();
    cluster.run_for(SimDuration::from_secs(5));
    cluster.assert_safety();

    let anomalies = anomaly::scan(&cluster.flight_events(), &AnomalyConfig::default());
    let flap = anomalies
        .iter()
        .find_map(|a| match a.kind {
            AnomalyKind::PeerFlap {
                peer, transitions, ..
            } => Some((peer, transitions)),
            _ => None,
        })
        .expect("two crash/restart cycles must be flagged as a peer flap");
    assert_eq!(flap.0, 3, "the flagged peer must be the flapping node");
    assert!(
        flap.1 >= 4,
        "four lifecycle transitions expected, saw {}",
        flap.1
    );
}

#[test]
fn lost_quorum_round_stall_is_flagged_live() {
    // Four nodes tolerate f = 1; crashing two kills the notarization
    // quorum, so the round open at t = 2 s stays open until the
    // restart at 4 s — two full seconds against a ~100 ms median. The
    // gossip sweep keeps ticking the survivors' detectors through the
    // silence, so the stall is flagged *during* the outage and
    // mirrored into the span ring, not reconstructed afterwards.
    let plan = FaultPlan::new()
        .crash_between(NodeIndex::new(2), at(2000), at(4000))
        .crash_between(NodeIndex::new(3), at(2000), at(4000));
    let mut cluster = gossip_cluster(
        builder(4, 7).fault_plan(plan).checkpoint_interval(8),
        Overlay::full_mesh(4),
        GossipConfig::default(),
    );
    cluster.run_for(SimDuration::from_secs(7));
    cluster.assert_safety();

    // Live path: a survivor's embedded detector flagged the stall and
    // retained the event for `/status`.
    let survivor = cluster.sim.node(0).core().telemetry();
    let counts = survivor.anomalies.counts();
    assert!(
        counts.round_stalls >= 1,
        "survivor 0 never flagged the lost-quorum stall: {counts:?}"
    );
    let stall = survivor
        .recent_anomalies()
        .into_iter()
        .find_map(|a| match a.kind {
            AnomalyKind::RoundStall {
                round,
                waited_us,
                median_us,
            } => Some((round, waited_us, median_us)),
            _ => None,
        })
        .expect("a RoundStall event must be retained for /status");
    assert!(
        stall.1 > 4 * stall.2,
        "flagged wait {} µs must exceed stall_factor × median {} µs",
        stall.1,
        stall.2
    );

    // Mirror path: the same anomaly landed in the flight-recorder
    // ring as a span, where traces and the offline scan can see it.
    let events = cluster.flight_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, SpanKind::Anomaly { .. }) && e.kind.label() == "round_stall"),
        "the stall must be mirrored into the span ring"
    );

    // Progress resumed after the restart (the stall was transient).
    assert!(
        cluster.min_committed_round() > 20,
        "cluster never recovered after the outage"
    );
}

#[test]
fn starved_node_flags_a_catch_up_storm_live() {
    // Every link *into* node 0 carries +1.5 s: it perpetually lags
    // ~25 rounds behind the frontier it hears about, so the gossip
    // layer repeatedly pulls certified catch-up packages for it. Three
    // of those inside the 5 s window is the storm the detector exists
    // to name — one catch-up is healthy recovery, a steady diet of
    // them is a sick replica.
    let slow = SlowLinks {
        links: (1..4)
            .map(|from| (NodeIndex::new(from), NodeIndex::new(0)))
            .collect(),
        extra: ms(1500),
    };
    // `inline_threshold: 0` forces the advert/request path: round-
    // tagged adverts are the behind-detection signal catch-up rides on
    // (the same setting the `replica` binary runs with).
    let config = GossipConfig {
        inline_threshold: 0,
        ..GossipConfig::default()
    };
    let mut cluster = gossip_cluster(builder(4, 11).policy(slow), Overlay::full_mesh(4), config);
    cluster.run_for(SimDuration::from_secs(10));
    cluster.assert_safety();

    let starved = cluster.sim.node(0).core().telemetry();
    let counts = starved.anomalies.counts();
    assert!(
        counts.catch_up_storms >= 1,
        "node 0's repeated catch-ups never flagged a storm: {counts:?}"
    );
    // The fast majority keeps a healthy cadence — their detectors
    // must not storm.
    for i in 1..4 {
        let c = cluster.sim.node(i).core().telemetry().anomalies.counts();
        assert_eq!(
            c.catch_up_storms, 0,
            "healthy node {i} falsely flagged a catch-up storm: {c:?}"
        );
    }
}
