//! Decoder robustness: arbitrary bytes must never panic the codec, and
//! every decodable value must re-encode canonically (decode ∘ encode =
//! id, encode ∘ decode = id on valid input).

use icc_types::codec::{decode_from_slice, encode_to_vec};
use icc_types::messages::ConsensusMessage;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random bytes: decoding may fail, but must never panic, and on
    /// success must re-encode to a canonical form that decodes to the
    /// same value.
    #[test]
    fn prop_decode_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(msg) = decode_from_slice::<ConsensusMessage>(&data) {
            let reencoded = encode_to_vec(&msg);
            let twice: ConsensusMessage = decode_from_slice(&reencoded).unwrap();
            prop_assert_eq!(msg, twice);
        }
    }

    /// Truncation at any point must produce an error, not a panic or a
    /// silently wrong value.
    #[test]
    fn prop_truncated_valid_message_errors(cut_frac in 0.0f64..1.0) {
        use icc_core::artifacts;
        use icc_core::keys::generate_keys;
        use icc_types::block::{Block, Payload};
        use icc_types::{NodeIndex, Round, SubnetConfig};

        let keys = generate_keys(SubnetConfig::new(4), 1);
        let block = Block::new(
            Round::new(1),
            NodeIndex::new(1),
            keys[0].setup.genesis.hash(),
            Payload::synthetic(3, 40, Round::new(1)),
        )
        .into_hashed();
        let msg = ConsensusMessage::Proposal(artifacts::proposal(&keys[1], block, None));
        let bytes = encode_to_vec(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_from_slice::<ConsensusMessage>(&bytes[..cut]).is_err());
        }
    }

    /// Single-byte corruption must never panic; it may still decode
    /// (e.g. a flipped payload byte) but must not produce the original.
    #[test]
    fn prop_bitflip_never_panics(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        use icc_core::artifacts;
        use icc_core::keys::generate_keys;
        use icc_types::block::{Block, Payload};
        use icc_types::{NodeIndex, Round, SubnetConfig};

        let keys = generate_keys(SubnetConfig::new(4), 2);
        let block = Block::new(
            Round::new(2),
            NodeIndex::new(0),
            icc_crypto::Hash256::ZERO,
            Payload::synthetic(2, 16, Round::new(2)),
        )
        .into_hashed();
        let msg = ConsensusMessage::Proposal(artifacts::proposal(&keys[0], block, None));
        let mut bytes = encode_to_vec(&msg);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = decode_from_slice::<ConsensusMessage>(&bytes); // must not panic
    }
}

#[test]
fn corrupted_artifacts_rejected_by_pool_not_crashing_it() {
    // End-to-end: feed a pool slightly-corrupted (but decodable)
    // messages; the pool must reject them via signature checks.
    use icc_core::artifacts;
    use icc_core::keys::generate_keys;
    use icc_core::pool::Pool;
    use icc_types::block::{Block, Payload};
    use icc_types::{NodeIndex, Round, SubnetConfig};
    use std::sync::Arc;

    let keys = generate_keys(SubnetConfig::new(4), 3);
    let mut pool = Pool::new(Arc::clone(&keys[0].setup));
    let block = Block::new(
        Round::new(1),
        NodeIndex::new(1),
        keys[0].setup.genesis.hash(),
        Payload::synthetic(2, 32, Round::new(1)),
    )
    .into_hashed();
    let good = ConsensusMessage::Proposal(artifacts::proposal(&keys[1], block, None));
    let bytes = encode_to_vec(&good);
    let mut accepted = 0;
    for pos in (0..bytes.len()).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xFF;
        if let Ok(msg) = decode_from_slice::<ConsensusMessage>(&corrupt) {
            if pool.insert(&msg) {
                accepted += 1;
            }
        }
    }
    // Any mutation must break either the authenticator (header bytes)
    // or the block hash the authenticator covers (payload bytes).
    assert_eq!(accepted, 0, "corrupted artifact accepted");
    assert!(pool.rejected_count() > 0);
}
