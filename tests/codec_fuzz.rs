//! Decoder robustness: arbitrary bytes must never panic the codec, and
//! every decodable value must re-encode canonically (decode ∘ encode =
//! id, encode ∘ decode = id on valid input). The same contract holds
//! one layer down for the TCP frame format: a malicious or corrupted
//! byte stream may only ever produce a typed `FrameError`, never a
//! panic or an attacker-sized allocation — and one layer *sideways* for
//! the on-disk WAL segments, which reuse the same frame format: a torn,
//! truncated, or corrupted segment file recovers to its last valid
//! record prefix, never a panic.

use icc_types::codec::{decode_from_slice, encode_to_vec};
use icc_types::frame::{encode_frame, FrameBuffer, FrameError, HEADER_LEN, MAGIC};
use icc_types::messages::ConsensusMessage;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random bytes: decoding may fail, but must never panic, and on
    /// success must re-encode to a canonical form that decodes to the
    /// same value.
    #[test]
    fn prop_decode_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(msg) = decode_from_slice::<ConsensusMessage>(&data) {
            let reencoded = encode_to_vec(&msg);
            let twice: ConsensusMessage = decode_from_slice(&reencoded).unwrap();
            prop_assert_eq!(msg, twice);
        }
    }

    /// Truncation at any point must produce an error, not a panic or a
    /// silently wrong value.
    #[test]
    fn prop_truncated_valid_message_errors(cut_frac in 0.0f64..1.0) {
        use icc_core::artifacts;
        use icc_core::keys::generate_keys;
        use icc_types::block::{Block, Payload};
        use icc_types::{NodeIndex, Round, SubnetConfig};

        let keys = generate_keys(SubnetConfig::new(4), 1);
        let block = Block::new(
            Round::new(1),
            NodeIndex::new(1),
            keys[0].setup.genesis.hash(),
            Payload::synthetic(3, 40, Round::new(1)),
        )
        .into_hashed();
        let msg = ConsensusMessage::Proposal(artifacts::proposal(&keys[1], block, None));
        let bytes = encode_to_vec(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_from_slice::<ConsensusMessage>(&bytes[..cut]).is_err());
        }
    }

    /// Single-byte corruption must never panic; it may still decode
    /// (e.g. a flipped payload byte) but must not produce the original.
    #[test]
    fn prop_bitflip_never_panics(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        use icc_core::artifacts;
        use icc_core::keys::generate_keys;
        use icc_types::block::{Block, Payload};
        use icc_types::{NodeIndex, Round, SubnetConfig};

        let keys = generate_keys(SubnetConfig::new(4), 2);
        let block = Block::new(
            Round::new(2),
            NodeIndex::new(0),
            icc_crypto::Hash256::ZERO,
            Payload::synthetic(2, 16, Round::new(2)),
        )
        .into_hashed();
        let msg = ConsensusMessage::Proposal(artifacts::proposal(&keys[0], block, None));
        let mut bytes = encode_to_vec(&msg);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = decode_from_slice::<ConsensusMessage>(&bytes); // must not panic
    }

    /// A framed payload reassembles exactly, no matter how the stream
    /// is sliced into reads.
    #[test]
    fn prop_frame_roundtrips_through_arbitrary_chunking(
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
        chunk in 1usize..64,
    ) {
        let wire = encode_frame(&payload);
        let mut buf = FrameBuffer::new();
        let mut got = None;
        for piece in wire.chunks(chunk) {
            buf.extend(piece);
            if let Some(frame) = buf.next_frame().unwrap() {
                prop_assert!(got.is_none(), "one frame in, one frame out");
                got = Some(frame);
            }
        }
        prop_assert_eq!(got.as_deref(), Some(&payload[..]));
        prop_assert_eq!(buf.next_frame().unwrap(), None);
    }

    /// Truncating a valid frame anywhere leaves the buffer waiting for
    /// more bytes — never a panic, never a partial frame surfaced.
    #[test]
    fn prop_truncated_frame_yields_nothing(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        cut_frac in 0.0f64..1.0,
    ) {
        let wire = encode_frame(&payload);
        let cut = ((wire.len() as f64) * cut_frac) as usize % wire.len();
        let mut buf = FrameBuffer::new();
        buf.extend(&wire[..cut]);
        prop_assert_eq!(buf.next_frame().unwrap(), None);
    }

    /// Arbitrary garbage fed to the frame buffer must either park as
    /// incomplete, yield a (coincidentally valid) frame, or produce a
    /// typed error — drained to exhaustion without panicking.
    #[test]
    fn prop_framebuffer_survives_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..128,
    ) {
        let mut buf = FrameBuffer::new();
        'outer: for piece in data.chunks(chunk) {
            buf.extend(piece);
            loop {
                match buf.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => break 'outer, // transport would drop the connection here
                }
            }
        }
    }

    /// A header claiming a payload above the configured cap is rejected
    /// as `TooLarge` from the 12 header bytes alone — before any
    /// payload arrives and before any allocation of the claimed size.
    #[test]
    fn prop_oversized_length_claim_rejected_from_header(excess in 1u32..1_000_000) {
        let max = 4096u32;
        let claimed = max.saturating_add(excess);
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.extend_from_slice(&claimed.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes()); // CRC never reached
        let mut buf = FrameBuffer::with_max_len(max);
        buf.extend(&header);
        prop_assert_eq!(
            buf.next_frame(),
            Err(FrameError::TooLarge { len: claimed, max })
        );
    }

    /// Flipping any bit of a frame must surface a typed error (or, for
    /// in-payload flips caught by the checksum, `Corrupt`) — and when a
    /// frame does survive a flip undetected, it cannot happen at all:
    /// magic, length, and CRC cover every byte.
    #[test]
    fn prop_frame_bitflip_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut wire = encode_frame(&payload);
        let pos = ((wire.len() as f64) * pos_frac) as usize % wire.len();
        wire[pos] ^= 1 << bit;
        let mut buf = FrameBuffer::new();
        buf.extend(&wire);
        match buf.next_frame() {
            Err(FrameError::BadMagic { .. }) => prop_assert!(pos < 4),
            // A flipped length bit reads as a longer/shorter frame: the
            // buffer either waits for bytes that never come or trips
            // the size cap or CRC.
            Ok(None) | Err(FrameError::TooLarge { .. }) => prop_assert!((4..8).contains(&pos)),
            Err(FrameError::Corrupt { .. }) => {}
            Ok(Some(frame)) => {
                // Shorter-length reads leave trailing garbage but the
                // CRC of the shortened span almost never matches; if it
                // somehow decoded, it must NOT equal the original.
                prop_assert_ne!(frame, payload);
            }
        }
    }
}

/// Scratch dir + payload helpers for the WAL-segment cases below.
mod wal_cases {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub fn scratch() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "icc_codec_fuzz_wal_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    pub fn opts() -> icc_wal::WalOptions {
        icc_wal::WalOptions {
            fsync: icc_wal::FsyncPolicy::PerCommit,
            ..icc_wal::WalOptions::default()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Torn tail / mid-record truncation: cutting any number of bytes
    /// off a segment recovers exactly the records that still fit whole
    /// — the last valid prefix, computed independently here from the
    /// record geometry.
    #[test]
    fn prop_wal_segment_truncation_recovers_exact_prefix(
        n_records in 1usize..16,
        payload_len in 1usize..96,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = wal_cases::scratch();
        let record_wire = HEADER_LEN + 8 + payload_len;
        {
            let (mut wal, _) = icc_wal::Wal::open(&dir, wal_cases::opts()).unwrap();
            for i in 0..n_records {
                wal.append(i as u64 + 1, &vec![i as u8; payload_len]).unwrap();
            }
        }
        let total = (n_records * record_wire) as u64;
        let cut = (((total as f64) * cut_frac) as u64).clamp(1, total);
        icc_wal::fault::truncate_tail(&dir, cut).unwrap();

        let (wal, recovered) = icc_wal::Wal::open(&dir, wal_cases::opts()).unwrap();
        let expect = (total - cut) as usize / record_wire;
        prop_assert_eq!(recovered.len(), expect);
        for (i, rec) in recovered.iter().enumerate() {
            prop_assert_eq!(rec.round, i as u64 + 1);
            prop_assert_eq!(&rec.payload, &vec![i as u8; payload_len]);
        }
        // A cut that lands exactly on a record boundary leaves a clean
        // (shorter) file; only a mid-record cut is a *torn* tail.
        if !(total - cut).is_multiple_of(record_wire as u64) {
            prop_assert!(wal.counters().torn_tail_truncations >= 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An oversized length claim in a segment header is rejected from
    /// the 12 header bytes alone — the prefix before it survives, and
    /// no attacker-sized allocation happens.
    #[test]
    fn prop_wal_oversized_header_keeps_prefix(n_records in 1usize..12) {
        let dir = wal_cases::scratch();
        {
            let (mut wal, _) = icc_wal::Wal::open(&dir, wal_cases::opts()).unwrap();
            for i in 0..n_records {
                wal.append(i as u64 + 1, &[0x5a; 24]).unwrap();
            }
        }
        icc_wal::fault::append_oversized_header(&dir).unwrap();

        let (wal, recovered) = icc_wal::Wal::open(&dir, wal_cases::opts()).unwrap();
        prop_assert_eq!(recovered.len(), n_records);
        prop_assert_eq!(wal.counters().oversized_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A bit flip anywhere in a mid-segment record surfaces as a CRC or
    /// magic failure; recovery keeps the records before it and drops the
    /// damaged suffix — never a panic, never a wrong payload.
    #[test]
    fn prop_wal_segment_bitflip_never_panics(
        n_records in 2usize..12,
        payload_len in 1usize..64,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = wal_cases::scratch();
        let record_wire = HEADER_LEN + 8 + payload_len;
        {
            let (mut wal, _) = icc_wal::Wal::open(&dir, wal_cases::opts()).unwrap();
            for i in 0..n_records {
                wal.append(i as u64 + 1, &vec![i as u8; payload_len]).unwrap();
            }
        }
        let total = n_records * record_wire;
        let seg = icc_wal::fault::last_segment(&dir).unwrap().unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let pos = ((total as f64) * pos_frac) as usize % total;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&seg, &bytes).unwrap();

        let (_, recovered) = icc_wal::Wal::open(&dir, wal_cases::opts()).unwrap();
        // Whatever survives is a correct prefix: record i's payload is
        // byte-identical, so a flip can only shorten, never falsify.
        prop_assert!(recovered.len() <= n_records);
        for (i, rec) in recovered.iter().enumerate() {
            prop_assert_eq!(rec.round, i as u64 + 1);
            prop_assert_eq!(&rec.payload, &vec![i as u8; payload_len]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupted_artifacts_rejected_by_pool_not_crashing_it() {
    // End-to-end: feed a pool slightly-corrupted (but decodable)
    // messages; the pool must reject them via signature checks.
    use icc_core::artifacts;
    use icc_core::keys::generate_keys;
    use icc_core::pool::Pool;
    use icc_types::block::{Block, Payload};
    use icc_types::{NodeIndex, Round, SubnetConfig};
    use std::sync::Arc;

    let keys = generate_keys(SubnetConfig::new(4), 3);
    let mut pool = Pool::new(Arc::clone(&keys[0].setup));
    let block = Block::new(
        Round::new(1),
        NodeIndex::new(1),
        keys[0].setup.genesis.hash(),
        Payload::synthetic(2, 32, Round::new(1)),
    )
    .into_hashed();
    let good = ConsensusMessage::Proposal(artifacts::proposal(&keys[1], block, None));
    let bytes = encode_to_vec(&good);
    let mut accepted = 0;
    for pos in (0..bytes.len()).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xFF;
        if let Ok(msg) = decode_from_slice::<ConsensusMessage>(&corrupt) {
            if pool.insert(&msg) {
                accepted += 1;
            }
        }
    }
    // Any mutation must break either the authenticator (header bytes)
    // or the block hash the authenticator covers (payload bytes).
    assert_eq!(accepted, 0, "corrupted artifact accepted");
    assert!(pool.rejected_count() > 0);
}
