//! Byzantine-fault tests: the protocol holds its guarantees with up to
//! `t` corrupt parties of every implemented behavior profile.

use icc_core::cluster::ClusterBuilder;
use icc_core::events::NodeEvent;
use icc_core::Behavior;
use icc_sim::delay::UniformDelay;
use icc_tests::assert_chains_consistent;
use icc_types::{Rank, SimDuration};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn cluster_with(n: usize, f: usize, behavior: Behavior, seed: u64) -> icc_core::Cluster {
    ClusterBuilder::new(n)
        .seed(seed)
        .network(UniformDelay::new(ms(2), ms(15)))
        .protocol_delays(ms(50), SimDuration::ZERO)
        .behaviors(Behavior::first_f(n, f, behavior))
        .build()
}

#[test]
fn crash_t_of_7_still_commits() {
    let mut cluster = cluster_with(7, 2, Behavior::Crash, 1);
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20, "committed {}", chain.len());
}

#[test]
fn crash_t_of_13_still_commits() {
    let mut cluster = cluster_with(13, 4, Behavior::Crash, 2);
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 10, "committed {}", chain.len());
}

#[test]
fn crashed_leaders_never_produce_committed_blocks() {
    let mut cluster = cluster_with(7, 2, Behavior::Crash, 3);
    cluster.run_for(SimDuration::from_secs(4));
    for block in cluster.committed_chain(2) {
        assert!(
            block.proposer().as_usize() >= 2,
            "a crashed node's block was committed"
        );
    }
}

#[test]
fn equivocators_get_disqualified_not_forked() {
    let mut cluster = cluster_with(7, 2, Behavior::Equivocate, 4);
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20);
    // Rounds led by an equivocator end with a higher-rank block or one
    // of the equivocating pair — but never two committed blocks (that
    // is what assert_chains_consistent establishes pairwise).
}

#[test]
fn withhold_finalization_below_quorum_is_harmless() {
    // Finalization needs n − t shares; with f ≤ t withholders the
    // remaining n − f ≥ n − t honest parties still reach the quorum.
    let mut cluster = cluster_with(7, 2, Behavior::WithholdFinalization, 5);
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 30, "commits must continue: {}", chain.len());
}

#[test]
fn withhold_shares_slows_but_does_not_stop_progress() {
    let mut cluster = cluster_with(7, 2, Behavior::WithholdShares, 6);
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20, "commits: {}", chain.len());
}

#[test]
fn empty_proposals_commit_but_carry_nothing() {
    let mut cluster = cluster_with(7, 2, Behavior::EmptyProposals, 7);
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 50);
    for block in &chain {
        if block.proposer().as_usize() < 2 {
            assert!(
                block.block().payload().is_empty(),
                "lazy node proposed a non-empty block?"
            );
        }
    }
}

#[test]
fn mixed_byzantine_cocktail() {
    let mut behaviors = vec![Behavior::Honest; 10];
    behaviors[0] = Behavior::Crash;
    behaviors[1] = Behavior::Equivocate;
    behaviors[2] = Behavior::WithholdFinalization;
    let mut cluster = ClusterBuilder::new(10)
        .seed(8)
        .network(UniformDelay::new(ms(2), ms(15)))
        .protocol_delays(ms(50), SimDuration::ZERO)
        .behaviors(behaviors)
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20, "commits: {}", chain.len());
}

#[test]
fn honest_rounds_still_leader_won_with_corrupt_minority() {
    // In rounds whose leader is honest, the leader's block wins even
    // with corrupt parties around (they cannot outvote the quorum).
    let mut cluster = cluster_with(7, 2, Behavior::Crash, 9);
    cluster.run_for(SimDuration::from_secs(3));
    let observer = cluster.honest_nodes()[0];
    let mut honest_led = 0;
    for o in cluster.events_of(observer).collect::<Vec<_>>() {
        if let NodeEvent::RoundFinished { notarized_rank, .. } = o.output {
            if notarized_rank == Rank::LEADER {
                honest_led += 1;
            }
        }
    }
    assert!(honest_led > 20, "leader-won rounds: {honest_led}");
}
