//! Byzantine-fault tests: the protocol holds its guarantees with up to
//! `t` corrupt parties of every implemented behavior profile.

use icc_core::cluster::ClusterBuilder;
use icc_core::events::NodeEvent;
use icc_core::Behavior;
use icc_sim::delay::UniformDelay;
use icc_tests::assert_chains_consistent;
use icc_types::{Rank, SimDuration};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn cluster_with(n: usize, f: usize, behavior: Behavior, seed: u64) -> icc_core::Cluster {
    ClusterBuilder::new(n)
        .seed(seed)
        .network(UniformDelay::new(ms(2), ms(15)))
        .protocol_delays(ms(50), SimDuration::ZERO)
        .behaviors(Behavior::first_f(n, f, behavior))
        .build()
}

#[test]
fn crash_t_of_7_still_commits() {
    let mut cluster = cluster_with(7, 2, Behavior::Crash, 1);
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20, "committed {}", chain.len());
}

#[test]
fn crash_t_of_13_still_commits() {
    let mut cluster = cluster_with(13, 4, Behavior::Crash, 2);
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 10, "committed {}", chain.len());
}

#[test]
fn crashed_leaders_never_produce_committed_blocks() {
    let mut cluster = cluster_with(7, 2, Behavior::Crash, 3);
    cluster.run_for(SimDuration::from_secs(4));
    for block in cluster.committed_chain(2) {
        assert!(
            block.proposer().as_usize() >= 2,
            "a crashed node's block was committed"
        );
    }
}

#[test]
fn equivocators_get_disqualified_not_forked() {
    let mut cluster = cluster_with(7, 2, Behavior::Equivocate, 4);
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20);
    // Rounds led by an equivocator end with a higher-rank block or one
    // of the equivocating pair — but never two committed blocks (that
    // is what assert_chains_consistent establishes pairwise).
}

#[test]
fn withhold_finalization_below_quorum_is_harmless() {
    // Finalization needs n − t shares; with f ≤ t withholders the
    // remaining n − f ≥ n − t honest parties still reach the quorum.
    let mut cluster = cluster_with(7, 2, Behavior::WithholdFinalization, 5);
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 30, "commits must continue: {}", chain.len());
}

#[test]
fn withhold_shares_slows_but_does_not_stop_progress() {
    let mut cluster = cluster_with(7, 2, Behavior::WithholdShares, 6);
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20, "commits: {}", chain.len());
}

#[test]
fn empty_proposals_commit_but_carry_nothing() {
    let mut cluster = cluster_with(7, 2, Behavior::EmptyProposals, 7);
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 50);
    for block in &chain {
        if block.proposer().as_usize() < 2 {
            assert!(
                block.block().payload().is_empty(),
                "lazy node proposed a non-empty block?"
            );
        }
    }
}

#[test]
fn mixed_byzantine_cocktail() {
    let mut behaviors = vec![Behavior::Honest; 10];
    behaviors[0] = Behavior::Crash;
    behaviors[1] = Behavior::Equivocate;
    behaviors[2] = Behavior::WithholdFinalization;
    let mut cluster = ClusterBuilder::new(10)
        .seed(8)
        .network(UniformDelay::new(ms(2), ms(15)))
        .protocol_delays(ms(50), SimDuration::ZERO)
        .behaviors(behaviors)
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20, "commits: {}", chain.len());
}

#[test]
fn honest_rounds_still_leader_won_with_corrupt_minority() {
    // In rounds whose leader is honest, the leader's block wins even
    // with corrupt parties around (they cannot outvote the quorum).
    let mut cluster = cluster_with(7, 2, Behavior::Crash, 9);
    cluster.run_for(SimDuration::from_secs(3));
    let observer = cluster.honest_nodes()[0];
    let mut honest_led = 0;
    for o in cluster.events_of(observer).collect::<Vec<_>>() {
        if let NodeEvent::RoundFinished { notarized_rank, .. } = o.output {
            if notarized_rank == Rank::LEADER {
                honest_led += 1;
            }
        }
    }
    assert!(honest_led > 20, "leader-won rounds: {honest_led}");
}

// ---------------------------------------------------------------------
// Re-gossip economics: an equivocator replaying artifacts cannot make
// an honest pool re-do signature verification (the two-tier pipeline's
// acceptance criterion, observable via the pool counters).
// ---------------------------------------------------------------------

mod regossip {
    use icc_core::artifacts;
    use icc_core::keys::generate_keys;
    use icc_core::pool::Pool;
    use icc_types::block::{Block, Payload};
    use icc_types::messages::{BlockRef, ConsensusMessage};
    use icc_types::{NodeIndex, Round, SubnetConfig};
    use std::sync::Arc;

    /// The stream an equivocator would capture off the wire in round 1:
    /// two equivocating proposals, everyone's shares on both forks, and
    /// the round-1 beacon shares.
    fn captured_stream() -> (Vec<ConsensusMessage>, Arc<icc_core::keys::PublicSetup>) {
        let keys = generate_keys(SubnetConfig::new(4), 77);
        let setup = keys[0].setup.clone();
        let mut stream = Vec::new();
        for tag in [1u8, 2] {
            // Two different round-1 blocks by the same proposer.
            let block = Block::new(
                Round::new(1),
                NodeIndex::new(1),
                setup.genesis.hash(),
                Payload::from_commands(vec![icc_types::Command::new(vec![tag])]),
            )
            .into_hashed();
            let r = BlockRef::of_hashed(&block);
            stream.push(ConsensusMessage::Proposal(artifacts::proposal(
                &keys[1], block, None,
            )));
            for k in &keys {
                stream.push(ConsensusMessage::NotarizationShare(
                    artifacts::notarization_share(k, r),
                ));
                stream.push(ConsensusMessage::FinalizationShare(
                    artifacts::finalization_share(k, r),
                ));
            }
        }
        for k in &keys {
            stream.push(ConsensusMessage::BeaconShare(artifacts::beacon_share(
                k,
                Round::new(1),
                &setup.genesis_beacon,
            )));
        }
        (stream, setup)
    }

    #[test]
    fn replayed_artifacts_never_reverify() {
        let (stream, setup) = captured_stream();
        let mut pool = Pool::new(setup);
        for msg in &stream {
            pool.insert(msg);
        }
        pool.try_compute_beacon(Round::new(1));
        let baseline = pool.stats();
        assert!(baseline.verify_calls > 0);

        // The equivocator re-gossips the whole captured stream, over
        // and over, with combine attempts in between.
        const REPLAYS: u64 = 10;
        for _ in 0..REPLAYS {
            for msg in &stream {
                pool.insert(msg);
            }
            pool.try_compute_beacon(Round::new(2));
        }
        let after = pool.stats();
        assert_eq!(
            after.verify_calls, baseline.verify_calls,
            "replay caused re-verification"
        );
        // Every replayed artifact must be dropped without touching
        // crypto — either as an exact duplicate of a pooled artifact,
        // or (for shares the quorum early-stop discarded unverified,
        // which are in no pool section to be duplicates *of*) as
        // redundant-after-quorum again.
        let dup_delta = after.duplicates_dropped - baseline.duplicates_dropped;
        let skip_delta = after.shares_skipped_after_quorum - baseline.shares_skipped_after_quorum;
        assert_eq!(
            dup_delta + skip_delta,
            REPLAYS * stream.len() as u64,
            "every replayed artifact must be cheaply dropped"
        );
        assert!(dup_delta > 0, "duplicate detection must still fire");
        assert!(
            after.verify_cache_hits >= baseline.verify_cache_hits,
            "cache hits must not regress"
        );
    }

    #[test]
    fn beacon_combine_attempts_hit_cache_not_crypto() {
        let (stream, setup) = captured_stream();
        let mut pool = Pool::new(setup);
        // Hold only one beacon share: below the t+1 = 2 threshold, so
        // every combine attempt re-examines it.
        for msg in &stream {
            if matches!(msg, ConsensusMessage::BeaconShare(_)) {
                pool.insert(msg);
                break;
            }
        }
        assert!(pool.try_compute_beacon(Round::new(1)).is_none());
        let baseline = pool.stats();
        for _ in 0..5 {
            assert!(pool.try_compute_beacon(Round::new(1)).is_none());
        }
        let after = pool.stats();
        assert_eq!(
            after.verify_calls, baseline.verify_calls,
            "no re-verification"
        );
        assert_eq!(
            after.verify_cache_hits,
            baseline.verify_cache_hits + 5,
            "each attempt reuses the cached verification"
        );
    }

    /// End-to-end: a full equivocating cluster accumulates duplicate
    /// drops (each party hears every artifact n − 1 extra times under
    /// full broadcast + echoes) while verification work stays bounded
    /// by the number of *distinct* artifacts.
    #[test]
    fn equivocating_cluster_verification_economics() {
        use icc_core::cluster::ClusterBuilder;
        use icc_core::Behavior;
        use icc_sim::delay::UniformDelay;
        use icc_types::SimDuration;

        let mut cluster = ClusterBuilder::new(4)
            .seed(21)
            .network(UniformDelay::new(
                SimDuration::from_millis(2),
                SimDuration::from_millis(15),
            ))
            .protocol_delays(SimDuration::from_millis(50), SimDuration::ZERO)
            .behaviors(Behavior::first_f(4, 1, Behavior::Equivocate))
            .build();
        cluster.run_for(SimDuration::from_secs(3));
        cluster.assert_safety();
        let pool = cluster.metrics_summary().pool;
        assert!(pool.verify_calls > 0);
        assert!(
            pool.duplicates_dropped > 0,
            "echoed artifacts must be deduplicated"
        );
        assert!(
            pool.verify_cache_hits > 0,
            "combine attempts must reuse cached verifications"
        );
        // The economic claim: the pipeline absorbed more duplicate work
        // than it performed crypto work only when gossip amplification
        // exceeds 1; at minimum the skipped work is material.
        assert!(
            pool.duplicates_dropped + pool.verify_cache_hits > pool.verify_calls / 2,
            "skipped work (dups {} + hits {}) not material vs verifies {}",
            pool.duplicates_dropped,
            pool.verify_cache_hits,
            pool.verify_calls
        );
    }
}
