//! Flight-recorder and critical-path integration tests: the telemetry
//! layer observed end-to-end through real cluster runs.
//!
//! Three scripted scenarios pin down the analyzer's semantics:
//!
//! 1. A healthy cluster produces a complete, exportable trace — every
//!    consensus phase appears and the Chrome-trace instant count equals
//!    the flight-recorder event count (the invariant `scenario
//!    --trace-out` asserts at export time).
//! 2. A rank-0 proposer behind slow outbound links makes *proposal*
//!    the dominant wait on its leader rounds.
//! 3. Withholding + delaying the beacon shares one node needs makes
//!    *beacon* its dominant wait, while the rest of the cluster runs
//!    at full speed.

#![cfg(feature = "telemetry")]

use icc_core::cluster::ClusterBuilder;
use icc_core::Behavior;
use icc_sim::policy::SlowLinks;
use icc_telemetry::{chrome_trace, round_timelines, Phase, SpanEvent, SpanKind};
use icc_types::{NodeIndex, SimDuration};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// One node's slice of the cluster-wide flight events, still in time
/// order ([`round_timelines`] is a per-node analysis).
fn node_events(events: &[SpanEvent], node: u32) -> Vec<SpanEvent> {
    events.iter().copied().filter(|e| e.node == node).collect()
}

#[test]
fn healthy_cluster_trace_is_complete_and_exportable() {
    let mut cluster = ClusterBuilder::new(4).seed(7).build();
    cluster.run_for(SimDuration::from_secs(2));
    cluster.assert_safety();

    let events = cluster.flight_events();
    assert!(!events.is_empty(), "a 2 s run must record flight events");

    // Every core consensus phase shows up in a healthy run.
    for want in [
        "round_start",
        "beacon_share_quorum",
        "proposed",
        "proposal_seen",
        "notarized",
        "finalized",
    ] {
        assert!(
            events.iter().any(|e| e.kind.label() == want),
            "missing phase {want:?} in flight events"
        );
    }

    // Events are globally time-ordered and stamped with real sim time.
    assert!(
        events.windows(2).all(|w| w[0].at_us <= w[1].at_us),
        "flight events must be sorted by timestamp"
    );

    // The Chrome-trace exporter emits exactly one instant ("ph":"i")
    // per flight event — the invariant the scenario binary asserts.
    let trace = chrome_trace(&events);
    let instants = trace.matches("\"ph\":\"i\"").count();
    assert_eq!(
        instants,
        events.len(),
        "trace instants must match flight-recorder events"
    );

    // Per-node timelines reconstruct: node 0 has one timeline per
    // round it both started and notarized, with monotone rounds.
    let tl = round_timelines(&node_events(&events, 0));
    assert!(
        tl.len() > 10,
        "expected many analyzed rounds, got {}",
        tl.len()
    );
    assert!(
        tl.windows(2).all(|w| w[0].round < w[1].round),
        "timelines must be in strictly increasing round order"
    );
    // Every completed round yields a verdict.
    assert!(
        tl.iter().all(|t| t.verdict().is_some()),
        "every analyzed round must have a dominant phase"
    );
}

#[test]
fn slow_leader_links_make_proposal_the_critical_path() {
    // Node 3's outbound links to everyone else carry +100 ms (δ =
    // 10 ms, Δbnd = 30 ms). On rounds where node 3 is the rank-0
    // leader, the others wait well past Δprop for its proposal, then
    // notarize a higher-rank block — so node 0's dominant wait on
    // those rounds must be the proposal phase.
    let slow = NodeIndex::new(3);
    let mut cluster = ClusterBuilder::new(4)
        .seed(11)
        .policy(SlowLinks {
            links: (0..3).map(|to| (slow, NodeIndex::new(to))).collect(),
            extra: ms(100),
        })
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    cluster.assert_safety();

    let events = cluster.flight_events();
    let n0 = node_events(&events, 0);

    // Rounds where node 3 led, read off node 0's RoundStart events
    // (skip round 1: genesis-adjacent timing is irregular).
    let led_by_slow: Vec<u64> = n0
        .iter()
        .filter_map(|e| match e.kind {
            SpanKind::RoundStart { leader, .. } if leader == 3 && e.round > 1 => Some(e.round),
            _ => None,
        })
        .collect();
    assert!(
        led_by_slow.len() >= 5,
        "seed must give node 3 several leader rounds, got {}",
        led_by_slow.len()
    );

    let timelines = round_timelines(&n0);
    let mut proposal_verdicts = 0usize;
    let mut checked = 0usize;
    for tl in timelines.iter().filter(|t| led_by_slow.contains(&t.round)) {
        checked += 1;
        if tl.verdict() == Some(Phase::Proposal) {
            proposal_verdicts += 1;
            // The wait must reflect the slow link: at least ~Δprop(1).
            let wait = tl
                .waits()
                .iter()
                .find(|(p, _)| *p == Phase::Proposal)
                .map(|(_, w)| *w)
                .unwrap();
            assert!(
                wait >= 40_000,
                "round {}: proposal wait {wait} µs too short for a 100 ms slow link",
                tl.round
            );
        }
    }
    assert!(checked >= 5, "analyzed only {checked} slow-leader rounds");
    assert!(
        proposal_verdicts * 10 >= checked * 8,
        "proposal must dominate slow-leader rounds: {proposal_verdicts}/{checked}"
    );

    // The cluster roll-up sees proposal waits too.
    let summary = cluster.critical_path();
    assert!(
        summary.count(Phase::Proposal) as usize >= proposal_verdicts,
        "roll-up must include node 0's proposal verdicts"
    );
}

#[test]
fn starved_beacon_shares_make_beacon_the_critical_path() {
    // Beacon recovery needs t + 1 = 2 shares. Node 3 withholds all
    // shares; nodes 1 and 2's messages to node 0 carry +80 ms. Node 0
    // thus holds its own share immediately but gets the second share
    // (and hence the next round's beacon) late every round — while
    // proposals and notarizations still reach it promptly once the
    // round opens. Beacon must dominate node 0's verdicts.
    let mut cluster = ClusterBuilder::new(4)
        .seed(3)
        .behaviors(vec![
            Behavior::Honest,
            Behavior::Honest,
            Behavior::Honest,
            Behavior::WithholdShares,
        ])
        .policy(SlowLinks {
            links: vec![
                (NodeIndex::new(1), NodeIndex::new(0)),
                (NodeIndex::new(2), NodeIndex::new(0)),
            ],
            extra: ms(80),
        })
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    cluster.assert_safety();

    let events = cluster.flight_events();
    let timelines = round_timelines(&node_events(&events, 0));
    let analyzed: Vec<_> = timelines.iter().filter(|t| t.round > 1).collect();
    assert!(
        analyzed.len() >= 10,
        "expected many analyzed rounds on node 0, got {}",
        analyzed.len()
    );
    let beacon = analyzed
        .iter()
        .filter(|t| t.verdict() == Some(Phase::Beacon))
        .count();
    assert!(
        beacon * 2 > analyzed.len(),
        "beacon must dominate node 0's rounds: {beacon}/{}",
        analyzed.len()
    );

    // The unimpaired majority keeps committing at full pace despite
    // node 0's starvation (deadlock-freeness, P1).
    assert!(
        cluster.committed_round(1) > 40,
        "majority must make normal progress"
    );
}
