//! Property-based tests: randomized schedules, topologies and fault
//! mixes must never violate safety, and liveness must hold whenever the
//! fault bound is respected.

use icc_core::cluster::ClusterBuilder;
use icc_core::epoch::{EpochSchedule, EpochSpec};
use icc_core::Behavior;
use icc_sim::delay::UniformDelay;
use icc_sim::policy::AsyncWindow;
use icc_tests::assert_chains_consistent;
use icc_types::{Round, SimDuration, SimTime};
use proptest::prelude::*;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn arb_behavior() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        Just(Behavior::Crash),
        Just(Behavior::Equivocate),
        Just(Behavior::EmptyProposals),
        Just(Behavior::WithholdShares),
        Just(Behavior::WithholdFinalization),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Safety and liveness hold for arbitrary seeds, jitter ranges and
    /// ≤ t corrupt parties of arbitrary profile.
    #[test]
    fn prop_safety_and_liveness_with_faults(
        seed in 0u64..10_000,
        max_delay_ms in 5u64..30,
        n in prop_oneof![Just(4usize), Just(7)],
        behavior in arb_behavior(),
        f_frac in 0u32..=2,
    ) {
        let t = n.div_ceil(3) - 1;
        let f = (t as u32 * f_frac / 2) as usize;
        let mut cluster = ClusterBuilder::new(n)
            .seed(seed)
            .network(UniformDelay::new(ms(1), ms(max_delay_ms)))
            .protocol_delays(ms(max_delay_ms * 4), SimDuration::ZERO)
            .behaviors(Behavior::first_f(n, f, behavior))
            .build();
        cluster.run_for(SimDuration::from_secs(3));
        let chain = assert_chains_consistent(&cluster);
        prop_assert!(chain.len() > 5, "only {} blocks committed", chain.len());
    }

    /// Safety survives an adversarial scheduling window placed anywhere.
    #[test]
    fn prop_safety_through_async_window(
        seed in 0u64..10_000,
        start_ms in 0u64..1000,
        len_ms in 100u64..1500,
    ) {
        let mut cluster = ClusterBuilder::new(4)
            .seed(seed)
            .protocol_delays(ms(60), SimDuration::ZERO)
            .policy(AsyncWindow {
                from: SimTime::ZERO + ms(start_ms),
                until: SimTime::ZERO + ms(start_ms + len_ms),
            })
            .build();
        // Check safety at several points, including inside the window.
        for checkpoint in [start_ms + len_ms / 2, start_ms + len_ms + 500, 4000] {
            cluster.run_until(SimTime::ZERO + ms(checkpoint));
            assert_chains_consistent(&cluster);
        }
        // After the window plus slack, progress must have resumed.
        prop_assert!(cluster.min_committed_round() > 10);
    }

    /// Commands never duplicate and never reorder across nodes,
    /// whatever the injection pattern.
    #[test]
    fn prop_commands_exactly_once_and_ordered(
        seed in 0u64..10_000,
        count in 1usize..30,
        window_ms in 50u64..1000,
    ) {
        let mut cluster = ClusterBuilder::new(4).seed(seed).build();
        cluster.inject_commands(SimTime::ZERO, ms(window_ms), count, 48);
        cluster.run_for(SimDuration::from_secs(3));
        assert_chains_consistent(&cluster);
        let seqs: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|node| icc_tests::committed_commands(&cluster, node))
            .collect();
        for s in &seqs {
            prop_assert_eq!(s.len(), count, "missing commands");
            let unique: std::collections::HashSet<_> = s.iter().collect();
            prop_assert_eq!(unique.len(), s.len(), "duplicates");
        }
        for s in &seqs[1..] {
            prop_assert_eq!(s, &seqs[0], "order differs");
        }
    }

    /// Differential: resharing the beacon key without changing the
    /// member set is *transparent*. A static-membership run and a run
    /// with a schedule of identity reshares — same seed, same workload —
    /// finalize **byte-identical** chains: the reshare preserves the
    /// group key, hence the beacon sequence, hence every rank
    /// permutation, proposer and block.
    #[test]
    fn prop_identity_reshares_are_chain_transparent(
        seed in 0u64..10_000,
        boundary in 8u64..25,
        count in 1usize..16,
    ) {
        let schedule = EpochSchedule::new(vec![
            EpochSpec::new(Round::GENESIS, (0..4).collect()),
            EpochSpec::new(Round::new(boundary), (0..4).collect()),
            EpochSpec::new(Round::new(boundary * 2), (0..4).collect()),
        ]);
        let mut plain = ClusterBuilder::new(4).seed(seed).build();
        let mut reshared = ClusterBuilder::new(4)
            .seed(seed)
            .with_epochs(schedule)
            .build();
        for cluster in [&mut plain, &mut reshared] {
            cluster.inject_commands(SimTime::ZERO, ms(800), count, 48);
            cluster.run_for(SimDuration::from_secs(3));
            cluster.assert_safety();
        }
        // The reshared run crossed both boundaries...
        prop_assert_eq!(
            reshared.epochs_entered(0),
            vec![
                (Round::new(boundary), 1),
                (Round::new(boundary * 2), 2)
            ]
        );
        // ...yet committed the identical chain, block for block. Hash
        // equality is content equality (the hash covers parent link,
        // proposer, rank and full payload bytes).
        let a = plain.committed_chain(0);
        let b = reshared.committed_chain(0);
        prop_assert!(
            a.len().abs_diff(b.len()) <= 1,
            "runs diverged in length: {} vs {}", a.len(), b.len()
        );
        prop_assert!(a.len() as u64 > boundary * 2 + 5, "run too short");
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.hash(), y.hash(), "chains diverge at round {}", x.round());
            prop_assert_eq!(x.round(), y.round());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// The default scale-out overlay stays connected with a small
    /// (logarithmic-ish) diameter and bounded degree for every subnet
    /// size and seed — the property the routed dissemination mode's
    /// traffic analysis rests on.
    #[test]
    fn prop_subnet_overlay_connected_with_log_diameter(
        n in 33usize..400,
        seed in 0u64..1_000,
    ) {
        let o = icc_gossip::Overlay::for_subnet(n, seed);
        // `diameter()` panics on a disconnected graph, so completing at
        // all proves connectivity.
        let d = o.diameter();
        let log2_ceil = (usize::BITS - (n - 1).leading_zeros()) as usize;
        prop_assert!(
            d <= 2 * log2_ceil + 4,
            "diameter {d} too large for n={n} (log2 {log2_ceil})"
        );
        // `random_regular` may exceed the target degree by 2 while
        // honouring symmetry; `for_subnet` targets at most 16.
        prop_assert!(o.max_degree() <= 18, "degree {} at n={n}", o.max_degree());
        // Symmetry: every edge is bidirectional.
        for i in 0..n {
            let me = icc_types::NodeIndex::new(i as u32);
            for j in o.neighbors(me) {
                prop_assert!(o.neighbors(*j).contains(&me));
            }
        }
    }
}
