//! Safety (Property P2 / the Safety lemma): honest parties never commit
//! conflicting chains — **under any network behavior**, including full
//! asynchrony, partitions and message loss. "Each of the ICC protocols
//! provides safety, even in the asynchronous setting."

use icc_core::cluster::ClusterBuilder;
use icc_sim::delay::UniformDelay;
use icc_sim::policy::{AsyncWindow, Partition, SlowNodes};
use icc_tests::assert_chains_consistent;
use icc_types::{NodeIndex, SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn at(v: u64) -> SimTime {
    SimTime::ZERO + ms(v)
}

#[test]
fn safety_under_random_jitter_many_seeds() {
    for seed in 0..8 {
        let mut cluster = ClusterBuilder::new(4)
            .seed(seed)
            .network(UniformDelay::new(ms(1), ms(40)))
            .protocol_delays(ms(120), SimDuration::ZERO)
            .build();
        cluster.run_for(SimDuration::from_secs(3));
        let chain = assert_chains_consistent(&cluster);
        assert!(!chain.is_empty(), "seed {seed}: nothing committed");
    }
}

#[test]
fn safety_across_partition_and_heal() {
    let mut cluster = ClusterBuilder::new(7)
        .seed(3)
        .protocol_delays(ms(60), SimDuration::ZERO)
        .policy(Partition {
            from: at(500),
            until: at(1500),
            group_a: vec![NodeIndex::new(0), NodeIndex::new(1), NodeIndex::new(2)],
        })
        .build();
    // Check safety repeatedly *during* the partition, not only at the end.
    for step in 1..=6 {
        cluster.run_until(at(step * 500));
        assert_chains_consistent(&cluster);
    }
    // After healing, everyone catches up past the partition window.
    assert!(
        cluster.min_committed_round() > 50,
        "only {} rounds committed after heal",
        cluster.min_committed_round()
    );
}

#[test]
fn safety_with_minority_partitioned_repeatedly() {
    let mut builder = ClusterBuilder::new(7)
        .seed(9)
        .protocol_delays(ms(60), SimDuration::ZERO);
    // Three successive partitions isolating different minorities.
    for (i, a) in [(0u64, 0u32), (1, 2), (2, 4)] {
        builder = builder.policy(Partition {
            from: at(400 + i * 800),
            until: at(900 + i * 800),
            group_a: vec![NodeIndex::new(a), NodeIndex::new(a + 1)],
        });
    }
    let mut cluster = builder.build();
    cluster.run_for(SimDuration::from_secs(4));
    assert_chains_consistent(&cluster);
}

#[test]
fn safety_during_full_asynchrony_window() {
    let mut cluster = ClusterBuilder::new(4)
        .seed(5)
        .protocol_delays(ms(60), SimDuration::ZERO)
        .policy(AsyncWindow {
            from: at(300),
            until: at(2000),
        })
        .build();
    cluster.run_until(at(1000));
    assert_chains_consistent(&cluster); // mid-asynchrony
    cluster.run_until(at(4000));
    let chain = assert_chains_consistent(&cluster);
    assert!(
        chain.len() > 20,
        "liveness after the window: {}",
        chain.len()
    );
}

#[test]
fn safety_with_lossy_network() {
    let mut cluster = ClusterBuilder::new(4)
        .seed(6)
        .loss(0.10, ms(50))
        .protocol_delays(ms(150), SimDuration::ZERO)
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(!chain.is_empty());
}

#[test]
fn safety_with_slow_links() {
    let mut cluster = ClusterBuilder::new(7)
        .seed(7)
        .protocol_delays(ms(100), SimDuration::ZERO)
        .policy(SlowNodes {
            nodes: vec![NodeIndex::new(1), NodeIndex::new(3)],
            extra: ms(90),
        })
        .build();
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 10);
}

#[test]
fn no_conflicting_finalized_blocks_per_round() {
    // P2 directly: across all nodes, at most one finalized block hash
    // per round.
    let mut cluster = ClusterBuilder::new(7)
        .seed(8)
        .network(UniformDelay::new(ms(1), ms(30)))
        .protocol_delays(ms(90), SimDuration::ZERO)
        .build();
    cluster.run_for(SimDuration::from_secs(3));
    let mut by_round = std::collections::HashMap::new();
    for node in 0..cluster.n() {
        for block in cluster.committed_chain(node) {
            let prev = by_round.insert(block.round(), block.hash());
            if let Some(h) = prev {
                assert_eq!(h, block.hash(), "two finalized blocks in {}", block.round());
            }
        }
    }
    assert!(by_round.len() > 30);
}
