//! Shared helpers for the workspace integration tests.

#![forbid(unsafe_code)]

use icc_core::cluster::{Cluster, CoreAccess};
use icc_core::events::NodeEvent;
use icc_sim::Node;
use icc_types::block::HashedBlock;
use icc_types::Command;

/// Asserts the atomic-broadcast contract across every pair of honest
/// nodes: committed chains are prefix-ordered (safety), and returns the
/// shortest honest chain (for liveness assertions).
pub fn assert_chains_consistent<N>(cluster: &Cluster<N>) -> Vec<HashedBlock>
where
    N: Node<External = Command, Output = NodeEvent> + CoreAccess,
{
    cluster.assert_safety();
    cluster
        .honest_nodes()
        .into_iter()
        .map(|i| cluster.committed_chain(i))
        .min_by_key(Vec::len)
        .unwrap_or_default()
}

/// Extracts the committed command byte-sequences of one node, in order.
pub fn committed_commands<N>(cluster: &Cluster<N>, node: usize) -> Vec<Vec<u8>>
where
    N: Node<External = Command, Output = NodeEvent> + CoreAccess,
{
    cluster
        .committed_chain(node)
        .iter()
        .flat_map(|b| {
            b.block()
                .payload()
                .commands()
                .iter()
                .map(|c| c.bytes().to_vec())
                .collect::<Vec<_>>()
        })
        .collect()
}
