//! Catching up: parties that missed rounds (partition, slow links)
//! recover from their peers' pooled artifacts — and the limits of the
//! purge optimization when they cannot.

use icc_core::cluster::ClusterBuilder;
use icc_core::BlockPolicy;
use icc_sim::policy::Partition;
use icc_tests::assert_chains_consistent;
use icc_types::{NodeIndex, SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn at(v: u64) -> SimTime {
    SimTime::ZERO + ms(v)
}

#[test]
fn isolated_node_catches_up_completely() {
    // Node 6 is cut off for 2 s while the other six keep committing;
    // after healing it must reach the same committed round.
    let mut cluster = ClusterBuilder::new(7)
        .seed(1)
        .protocol_delays(ms(60), SimDuration::ZERO)
        .policy(Partition {
            from: at(500),
            until: at(2500),
            group_a: vec![NodeIndex::new(6)],
        })
        .build();
    cluster.run_until(at(2400));
    let majority = cluster.committed_round(0);
    let isolated = cluster.committed_round(6);
    assert!(
        majority > isolated + 30,
        "majority must run ahead: {majority} vs {isolated}"
    );
    // Heal and allow catch-up.
    cluster.run_until(at(4000));
    assert_chains_consistent(&cluster);
    let caught_up = cluster.committed_round(6);
    let majority_now = cluster.committed_round(0);
    assert!(
        majority_now - caught_up <= 2,
        "isolated node must catch up: {caught_up} vs {majority_now}"
    );
}

#[test]
fn catch_up_works_within_purge_window() {
    // With purging enabled but a window larger than the outage, peers
    // still hold everything the returning node needs.
    let mut cluster = ClusterBuilder::new(4)
        .seed(2)
        .protocol_delays(ms(60), SimDuration::ZERO)
        .block_policy(BlockPolicy {
            max_commands: 100,
            max_bytes: 1 << 20,
            purge_depth: Some(200),
        })
        .policy(Partition {
            from: at(300),
            until: at(1300),
            group_a: vec![NodeIndex::new(3)],
        })
        .build();
    cluster.run_until(at(3000));
    assert_chains_consistent(&cluster);
    let behind = cluster.committed_round(3);
    let ahead = cluster.committed_round(0);
    assert!(
        ahead - behind <= 2,
        "within-window catch-up: {behind} vs {ahead}"
    );
}

#[test]
fn eventual_delivery_makes_deep_purging_safe() {
    // A subtlety of the paper's network model: every broadcast message
    // is *eventually delivered* (§1), so a partitioned node's missing
    // artifacts are owed to it by the network itself — peers purging
    // their pools (§3.1 optimization) cannot strand it. Even with a
    // purge window (5 rounds) far smaller than the outage (~33 rounds),
    // the returning node catches up fully from in-flight deliveries.
    // (A deployment whose transport actually *drops* messages would need
    // state sync here, as PBFT's checkpointing provides; that transport
    // assumption is outside the paper's model.)
    let mut cluster = ClusterBuilder::new(4)
        .seed(3)
        .protocol_delays(ms(60), SimDuration::ZERO)
        .block_policy(BlockPolicy {
            max_commands: 100,
            max_bytes: 1 << 20,
            purge_depth: Some(5),
        })
        .policy(Partition {
            from: at(300),
            until: at(2300),
            group_a: vec![NodeIndex::new(3)],
        })
        .build();
    cluster.run_until(at(4000));
    assert_chains_consistent(&cluster);
    let behind = cluster.committed_round(3);
    let ahead = cluster.committed_round(0);
    assert!(
        ahead - behind <= 2,
        "eventual delivery must close the gap: {behind} vs {ahead}"
    );
}
