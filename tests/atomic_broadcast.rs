//! The atomic-broadcast contract end-to-end: identical total order of
//! commands at every honest party, exactly-once commitment, and the
//! strong liveness notion (§1: a command input to sufficiently many
//! parties appears in everyone's output "not too much later").

use icc_core::cluster::ClusterBuilder;
use icc_core::replica::{KvStore, Replica};
use icc_core::Behavior;
use icc_sim::delay::UniformDelay;
use icc_tests::{assert_chains_consistent, committed_commands};
use icc_types::{SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

#[test]
fn identical_command_order_across_nodes() {
    let mut cluster = ClusterBuilder::new(4)
        .seed(1)
        .network(UniformDelay::new(ms(1), ms(20)))
        .protocol_delays(ms(60), SimDuration::ZERO)
        .build();
    cluster.inject_commands(SimTime::ZERO, SimDuration::from_secs(1), 40, 64);
    cluster.run_for(SimDuration::from_secs(3));
    assert_chains_consistent(&cluster);
    let reference = committed_commands(&cluster, 0);
    assert_eq!(reference.len(), 40, "all commands committed");
    for node in 1..4 {
        let other = committed_commands(&cluster, node);
        let common = reference.len().min(other.len());
        assert_eq!(
            reference[..common],
            other[..common],
            "order differs at node {node}"
        );
    }
}

#[test]
fn exactly_once_despite_submission_to_all_nodes() {
    // Every command is submitted to every node; the chain-walk dedup in
    // getPayload must keep each committed exactly once.
    let mut cluster = ClusterBuilder::new(4).seed(2).build();
    cluster.inject_commands(SimTime::ZERO, ms(400), 25, 32);
    cluster.run_for(SimDuration::from_secs(2));
    let cmds = committed_commands(&cluster, 0);
    let unique: std::collections::HashSet<_> = cmds.iter().collect();
    assert_eq!(cmds.len(), unique.len(), "duplicate commands committed");
    assert_eq!(cmds.len(), 25);
}

#[test]
fn commands_commit_promptly_under_load() {
    let mut cluster = ClusterBuilder::new(4).seed(3).build();
    cluster.inject_commands(SimTime::ZERO, SimDuration::from_secs(2), 200, 128);
    cluster.run_for(SimDuration::from_secs(3));
    let latencies = cluster.command_latencies(0);
    assert_eq!(latencies.len(), 200);
    let max = latencies.iter().max().unwrap();
    // δ = 10 ms ⇒ worst case ≈ next proposal (≤ 1 round) + 3δ commit
    // path, far below 200 ms.
    assert!(max.as_micros() < 200_000, "max command latency {max}");
}

#[test]
fn replicas_converge_from_committed_stream() {
    let mut behaviors = vec![Behavior::Honest; 7];
    behaviors[6] = Behavior::Equivocate;
    let mut cluster = ClusterBuilder::new(7)
        .seed(4)
        .network(UniformDelay::new(ms(1), ms(12)))
        .protocol_delays(ms(40), SimDuration::ZERO)
        .behaviors(behaviors)
        .build();
    for i in 0..30 {
        let at = SimTime::ZERO + ms(30 * i);
        let cmd = KvStore::set_command(&format!("k{}", i % 7), &format!("v{i}"));
        for node in 0..7 {
            cluster
                .sim
                .schedule_external(at, icc_types::NodeIndex::new(node), cmd.clone());
        }
    }
    cluster.run_for(SimDuration::from_secs(3));
    assert_chains_consistent(&cluster);
    let digests: Vec<_> = cluster
        .honest_nodes()
        .into_iter()
        .map(|node| {
            let mut replica = Replica::new(KvStore::new());
            for o in cluster.events_of(node) {
                replica.on_event(&o.output);
            }
            replica.state_digest()
        })
        .collect();
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "replica state diverged");
    }
}

#[test]
fn committed_chain_is_a_real_hash_chain() {
    let mut cluster = ClusterBuilder::new(4).seed(5).build();
    cluster.run_for(SimDuration::from_secs(1));
    let chain = cluster.committed_chain(0);
    assert!(chain.len() > 30);
    let genesis = cluster.sim.node(0).core().setup().genesis.hash();
    assert_eq!(chain[0].parent(), genesis);
    for w in chain.windows(2) {
        assert_eq!(w[1].parent(), w[0].hash(), "hash chain broken");
    }
}

#[test]
fn ledger_conservation_across_byzantine_cluster() {
    // Token conservation: under an equivocating minority and interleaved
    // mint/transfer traffic (including deterministic overdraft
    // rejections), every honest replica's ledger satisfies
    // total_supply == total_minted and all digests agree.
    use icc_core::replica::{Ledger, Replica};
    let mut behaviors = vec![icc_core::Behavior::Honest; 7];
    behaviors[0] = icc_core::Behavior::Equivocate;
    let mut cluster = ClusterBuilder::new(7)
        .seed(17)
        .network(UniformDelay::new(ms(1), ms(12)))
        .protocol_delays(ms(40), SimDuration::ZERO)
        .behaviors(behaviors)
        .build();
    let accounts = ["a", "b", "c"];
    for i in 0..60u64 {
        let at = SimTime::ZERO + ms(20 * i);
        let cmd = if i % 3 == 0 {
            Ledger::mint_command(accounts[(i / 3) as usize % 3], 10 + i)
        } else {
            // Includes guaranteed-overdraft transfers early on.
            Ledger::transfer_command(
                accounts[i as usize % 3],
                accounts[(i + 1) as usize % 3],
                5 + i * 2,
            )
        };
        for node in 0..7 {
            cluster
                .sim
                .schedule_external(at, icc_types::NodeIndex::new(node), cmd.clone());
        }
    }
    cluster.run_for(SimDuration::from_secs(4));
    assert_chains_consistent(&cluster);
    let mut digests = Vec::new();
    for node in cluster.honest_nodes() {
        let mut replica = Replica::new(Ledger::new());
        for o in cluster.events_of(node) {
            replica.on_event(&o.output);
        }
        let ledger = replica.machine();
        assert_eq!(
            ledger.total_supply(),
            ledger.total_minted(),
            "conservation violated at node {node}"
        );
        assert!(ledger.total_minted() > 0, "mints committed");
        assert!(
            ledger.rejected() > 0,
            "overdrafts were deterministically rejected"
        );
        digests.push(replica.state_digest());
    }
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "ledger state diverged");
    }
}
