//! Protocol ICC1: the consensus core over the gossip sub-layer must
//! preserve every guarantee while changing the dissemination economics.

use icc_core::cluster::ClusterBuilder;
use icc_core::Behavior;
use icc_core::BlockPolicy;
use icc_gossip::{gossip_cluster, routed_gossip_cluster, GossipConfig, Overlay};
use icc_sim::delay::FixedDelay;
use icc_tests::{assert_chains_consistent, committed_commands};
use icc_types::{Round, SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn builder(n: usize, seed: u64) -> ClusterBuilder {
    ClusterBuilder::new(n)
        .seed(seed)
        .network(FixedDelay::new(ms(10)))
        .protocol_delays(ms(60), SimDuration::ZERO)
}

#[test]
fn commits_on_sparse_overlay() {
    let overlay = Overlay::random_regular(7, 3, 1);
    let mut cluster = gossip_cluster(builder(7, 1), overlay, GossipConfig::default());
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 20, "committed {}", chain.len());
}

#[test]
fn full_mesh_overlay_matches_icc0_round_rate() {
    let mut icc0 = builder(4, 2).build();
    icc0.run_for(SimDuration::from_secs(2));
    let overlay = Overlay::full_mesh(4);
    let mut icc1 = gossip_cluster(builder(4, 2), overlay, GossipConfig::default());
    icc1.run_for(SimDuration::from_secs(2));
    let r0 = icc0.min_committed_round();
    let r1 = icc1.min_committed_round();
    assert!(
        (r0 as i64 - r1 as i64).abs() <= 3,
        "round rates diverge: icc0={r0} icc1={r1}"
    );
}

#[test]
fn large_blocks_travel_by_advert_request() {
    let overlay = Overlay::random_regular(7, 3, 3);
    let b = builder(7, 3).block_policy(BlockPolicy {
        max_commands: 1000,
        max_bytes: 1 << 20,
        purge_depth: None,
    });
    let mut cluster = gossip_cluster(b, overlay, GossipConfig::default());
    // 64 KiB commands => blocks far above the 4 KiB inline threshold.
    cluster.inject_commands(SimTime::ZERO, ms(500), 20, 65536);
    cluster.run_for(SimDuration::from_secs(4));
    assert_chains_consistent(&cluster);
    let cmds = committed_commands(&cluster, 0);
    assert_eq!(cmds.len(), 20, "all large commands committed");
    // Per-kind metrics must show adverts/deliveries in use.
    let sent = &cluster.sim.metrics().per_node()[0].sent_by_kind;
    assert!(sent.contains_key("advert"), "kinds: {:?}", sent.keys());
}

#[test]
fn gossip_cuts_leader_bottleneck_for_large_blocks() {
    let policy = BlockPolicy {
        max_commands: 1000,
        max_bytes: 512 << 10,
        purge_depth: None,
    };
    let mut icc0 = builder(10, 4).block_policy(policy).build();
    icc0.inject_commands(SimTime::ZERO, ms(500), 30, 65536);
    icc0.run_for(SimDuration::from_secs(3));
    let max0 = icc0.sim.metrics().max_node_bytes();

    let overlay = Overlay::random_regular(10, 3, 5);
    let mut icc1 = gossip_cluster(
        builder(10, 4).block_policy(policy),
        overlay,
        GossipConfig::default(),
    );
    icc1.inject_commands(SimTime::ZERO, ms(500), 30, 65536);
    icc1.run_for(SimDuration::from_secs(3));
    let max1 = icc1.sim.metrics().max_node_bytes();

    assert!(
        max1 * 2 < max0,
        "gossip should at least halve the bottleneck: icc0={max0} icc1={max1}"
    );
}

#[test]
fn byzantine_behaviors_survive_gossip_transport() {
    let overlay = Overlay::random_regular(7, 4, 6);
    let b = builder(7, 6).behaviors(Behavior::first_f(7, 2, Behavior::Equivocate));
    let mut cluster = gossip_cluster(b, overlay, GossipConfig::default());
    cluster.run_for(SimDuration::from_secs(3));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 15, "committed {}", chain.len());
}

#[test]
fn request_retry_survives_timeouts_shorter_than_the_network() {
    // Request timeout (50 ms) far below the network delay (200 ms): the
    // retry sweep re-requests bodies that are still in flight. Progress
    // must be unharmed and the duplicate deliveries harmless.
    let overlay = Overlay::random_regular(7, 3, 9);
    let b = ClusterBuilder::new(7)
        .seed(9)
        .network(FixedDelay::new(ms(200)))
        .protocol_delays(ms(600), SimDuration::ZERO)
        .block_policy(BlockPolicy {
            max_commands: 100,
            max_bytes: 1 << 20,
            purge_depth: None,
        });
    let mut cluster = gossip_cluster(
        b,
        overlay,
        GossipConfig {
            inline_threshold: 4 << 10,
            request_timeout: ms(50),
            offered_capacity: 4,
            ..GossipConfig::default()
        },
    );
    cluster.inject_commands(SimTime::ZERO, ms(2000), 10, 65536);
    cluster.run_for(SimDuration::from_secs(30));
    assert_chains_consistent(&cluster);
    assert_eq!(committed_commands(&cluster, 0).len(), 10);
}

#[test]
fn crash_faults_on_overlay_do_not_partition_honest_nodes() {
    // Degree-4 overlay with 2 crashed nodes: flooding must still reach
    // all honest parties (the overlay stays connected w.h.p.; this seed
    // is checked).
    let overlay = Overlay::random_regular(10, 4, 7);
    let b = builder(10, 7).behaviors(Behavior::first_f(10, 3, Behavior::Crash));
    let mut cluster = gossip_cluster(b, overlay, GossipConfig::default());
    cluster.run_for(SimDuration::from_secs(4));
    let chain = assert_chains_consistent(&cluster);
    assert!(chain.len() > 10, "committed {}", chain.len());
}

#[test]
fn routed_mode_finalizes_same_chain_as_full_fanout() {
    // Parity: the aggregator-routed bounded-degree regime must finalize
    // the *same blocks* as ICC0's full broadcast — same seed, same
    // keys, same beacons, same leaders, byte-identical chain on every
    // round both runs committed.
    let n = 40;
    let mut icc0 = builder(n, 11).build();
    icc0.run_for(SimDuration::from_secs(4));
    icc0.assert_safety();

    let mut routed = routed_gossip_cluster(builder(n, 11));
    routed.run_for(SimDuration::from_secs(4));
    let chain1 = assert_chains_consistent(&routed);
    assert!(chain1.len() > 10, "routed committed {}", chain1.len());

    let chain0 = icc0.committed_chain(0);
    let by_round0: std::collections::BTreeMap<_, _> =
        chain0.iter().map(|b| (b.round(), b.hash())).collect();
    let mut common = 0;
    for b in &chain1 {
        if let Some(h0) = by_round0.get(&b.round()) {
            assert_eq!(
                *h0,
                b.hash(),
                "routed and full-fanout disagree at round {}",
                b.round()
            );
            common += 1;
        }
    }
    assert!(common > 10, "only {common} common rounds");

    // The point of the exercise: routed shares were used, and the pool
    // skipped share verifications once quorums stood.
    routed.sample_pool_metrics();
    let totals = routed.sim.metrics().gossip_totals();
    assert!(totals.shares_routed > 0, "no shares routed: {totals:?}");
}

#[test]
fn routed_mode_survives_aggregator_crash() {
    // Crash the *entire* aggregator set of one future round before the
    // run starts. Shares for that round go to dead nodes; the liveness
    // watchdog must detect the stall and re-send to a widened set.
    let n = 40;
    let stalled_round = Round::new(10);
    let doomed = icc_gossip::aggregators_for(stalled_round, n, 3);
    let mut plan = icc_sim::FaultPlan::new();
    for a in &doomed {
        plan = plan.crash_at(*a, SimTime::ZERO);
    }
    let mut cluster = routed_gossip_cluster(builder(n, 12).fault_plan(plan));
    cluster.run_for(SimDuration::from_secs(12));
    cluster.assert_safety();
    let honest: Vec<usize> = (0..n)
        .filter(|i| !doomed.contains(&icc_types::NodeIndex::new(*i as u32)))
        .collect();
    let min_round = honest
        .iter()
        .map(|&i| cluster.committed_round(i))
        .min()
        .unwrap();
    assert!(
        min_round > stalled_round.get() + 3,
        "stalled at round {min_round} (aggregators of round {stalled_round} were crashed)"
    );
}
