//! On-disk durability acceptance: the `WalEntry` codec roundtrips
//! through the exact on-disk record format, every injected disk fault
//! recovers to the last valid prefix without panicking, and a
//! file-backed cluster power-cycled K times restores each node from its
//! own WAL — monotone frontier, **zero** signature re-verifications.

use icc_core::cluster::ClusterBuilder;
use icc_core::storage::{Checkpoint, DurableStore, FileBackend, WalEntry};
use icc_crypto::beacon::BeaconValue;
use icc_crypto::multisig::MultiSig;
use icc_crypto::sig::Signature;
use icc_crypto::Hash256;
use icc_gossip::{GossipConfig, GossipNode, Overlay};
use icc_sim::delay::FixedDelay;
use icc_types::block::{Block, Payload};
use icc_types::codec::{decode_from_slice, encode_to_vec, Encode};
use icc_types::frame::{encode_frame, FrameBuffer, HEADER_LEN};
use icc_types::messages::{BlockProposal, BlockRef, Finalization, Notarization};
use icc_types::{NodeIndex, Round, SimDuration};
use icc_wal::fault::{self, DiskFault, FaultFs};
use icc_wal::{FsyncPolicy, Wal, WalOptions};
use proptest::prelude::*;
use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique, pre-cleaned scratch directory per call (tests in this
/// binary run in parallel threads of one process).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "icc_durability_{}_{}_{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn per_commit() -> WalOptions {
    WalOptions {
        fsync: FsyncPolicy::PerCommit,
        ..WalOptions::default()
    }
}

// ---- synthetic artifact fixtures (structural, not verified: the codec
// and the storage layer never check signatures) ----

fn block(round: u64, cmds: usize, size: usize) -> Block {
    Block::new(
        Round::new(round),
        NodeIndex::new((round % 4) as u32),
        Hash256([round as u8; 32]),
        Payload::synthetic(cmds, size, Round::new(round)),
    )
}

fn proposal(round: u64, cmds: usize, size: usize) -> BlockProposal {
    BlockProposal {
        block: block(round, cmds, size).into_hashed(),
        authenticator: Signature::from_value(round ^ 0xa5),
        parent_notarization: None,
    }
}

fn multisig(seed: u64, signers: &[u32]) -> MultiSig {
    MultiSig {
        signature: Signature::from_value(seed),
        signers: signers.to_vec().into(),
    }
}

fn notarization(round: u64, cmds: usize, size: usize) -> Notarization {
    Notarization {
        block_ref: BlockRef::of(&block(round, cmds, size)),
        sig: multisig(round.wrapping_mul(31), &[0, 1, 2]),
    }
}

fn finalization(round: u64, cmds: usize, size: usize) -> Finalization {
    Finalization {
        block_ref: BlockRef::of(&block(round, cmds, size)),
        sig: multisig(round.wrapping_mul(37), &[1, 2, 3]),
    }
}

fn entry(round: u64, variant: u8, cmds: usize, size: usize) -> WalEntry {
    match variant % 5 {
        0 => WalEntry::Beacon(
            Round::new(round),
            BeaconValue::Signature(Signature::from_value(round)),
        ),
        1 => WalEntry::Notarized {
            proposal: proposal(round, cmds, size),
            notarization: Some(notarization(round, cmds, size)),
        },
        2 => WalEntry::Notarized {
            proposal: proposal(round, cmds, size),
            notarization: None,
        },
        3 => WalEntry::Finalization(finalization(round, cmds, size)),
        _ => WalEntry::Committed {
            round: Round::new(round),
            digests: (0..cmds as u64).map(|i| Hash256([i as u8; 32])).collect(),
        },
    }
}

fn checkpoint(round: u64) -> Checkpoint {
    Checkpoint {
        proposal: proposal(round, 2, 24),
        notarization: notarization(round, 2, 24),
        finalization: finalization(round, 2, 24),
        beacon: BeaconValue::Signature(Signature::from_value(round ^ 0xbea)),
        committed: vec![Hash256([7u8; 32]), Hash256([9u8; 32])],
        transitions: Vec::new(),
    }
}

/// Fills `store` with a plausible consensus history over `rounds`.
fn populate(store: &mut DurableStore, rounds: std::ops::RangeInclusive<u64>) {
    for r in rounds {
        store.append_beacon(
            Round::new(r),
            BeaconValue::Signature(Signature::from_value(r)),
        );
        store.append_block(proposal(r, 2, 24), Some(notarization(r, 2, 24)));
        store.append_finalization(finalization(r, 2, 24));
        store.append_committed(Round::new(r), vec![Hash256([r as u8; 32])]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `WalEntry` ↔ on-disk record: the codec roundtrips, and so does
    /// the full record format (8-byte LE round prefix + entry bytes,
    /// CRC-framed) that `icc-wal` actually writes.
    #[test]
    fn prop_wal_entry_roundtrips_through_record_format(
        round in 1u64..1_000_000,
        variant in 0u8..5,
        cmds in 0usize..6,
        size in 1usize..64,
    ) {
        let e = entry(round, variant, cmds, size);
        // Codec layer: one canonical byte form, length exact.
        let bytes = encode_to_vec(&e);
        prop_assert_eq!(bytes.len(), e.encoded_len());
        let back: WalEntry = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(&back, &e);

        // Record layer: the exact on-disk framing `icc-wal` uses.
        let mut record = e.round().get().to_le_bytes().to_vec();
        record.extend_from_slice(&bytes);
        let wire = encode_frame(&record);
        let mut buf = FrameBuffer::new();
        buf.extend(&wire);
        let payload = buf.next_frame().unwrap().expect("one whole frame");
        let round_back = u64::from_le_bytes(payload[..8].try_into().unwrap());
        prop_assert_eq!(round_back, e.round().get());
        let disk: WalEntry = decode_from_slice(&payload[8..]).unwrap();
        prop_assert_eq!(disk, e);
    }

    /// The same roundtrip through a real file: append, reopen, compare.
    #[test]
    fn prop_wal_entry_survives_real_disk(
        round in 1u64..1_000_000,
        variant in 0u8..5,
        cmds in 0usize..4,
        size in 1usize..48,
    ) {
        let dir = scratch("disk_roundtrip");
        let e = entry(round, variant, cmds, size);
        let bytes = encode_to_vec(&e);
        {
            let (mut wal, recovered) = Wal::open(&dir, per_commit()).unwrap();
            prop_assert!(recovered.is_empty());
            wal.append(e.round().get(), &bytes).unwrap();
        }
        let (_, recovered) = Wal::open(&dir, per_commit()).unwrap();
        prop_assert_eq!(recovered.len(), 1);
        prop_assert_eq!(recovered[0].round, e.round().get());
        let back: WalEntry = decode_from_slice(&recovered[0].payload).unwrap();
        prop_assert_eq!(back, e);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Checkpoint codec roundtrip (the atomic-file payload).
    #[test]
    fn prop_checkpoint_roundtrips(round in 1u64..1_000_000) {
        let cp = checkpoint(round);
        let bytes = encode_to_vec(&cp);
        prop_assert_eq!(bytes.len(), cp.encoded_len());
        let back: Checkpoint = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, cp);
    }
}

/// Every post-hoc disk fault recovers to the last valid prefix — no
/// panic, the damage counted in the right `StorageCounters` field, and
/// the store usable (appendable, re-recoverable) afterwards.
#[test]
fn fault_matrix_recovers_to_valid_prefix() {
    type Inject = fn(&std::path::Path);
    type CounterOf = fn(&icc_wal::StorageCounters) -> u64;
    let faults: [(&str, Inject, CounterOf); 5] = [
        (
            "torn_tail_small",
            |d| {
                fault::truncate_tail(d, 3).unwrap();
            },
            |c| c.torn_tail_truncations,
        ),
        (
            "torn_tail_mid_record",
            |d| {
                fault::truncate_tail(d, 25).unwrap();
            },
            |c| c.torn_tail_truncations,
        ),
        (
            "bit_flip",
            |d| {
                fault::flip_bit(d, 40).unwrap();
            },
            |c| c.crc_corruptions,
        ),
        (
            "garbage_tail",
            |d| {
                fault::append_garbage(d, b"\xde\xad\xbe\xef not a frame").unwrap();
            },
            |c| c.corrupt_records() + c.torn_tail_truncations,
        ),
        (
            "oversized_header",
            |d| {
                fault::append_oversized_header(d).unwrap();
            },
            |c| c.oversized_records,
        ),
    ];

    for (name, inject, counted) in faults {
        let dir = scratch(name);
        {
            let mut store = DurableStore::file(&dir, per_commit()).unwrap();
            populate(&mut store, 1..=12);
            assert_eq!(store.frontier().get(), 12, "{name}");
        }
        inject(&dir);

        // Recovery: no panic, a valid prefix, the fault visible in
        // telemetry.
        let mut store = DurableStore::file(&dir, per_commit()).unwrap();
        let counters = store.storage_counters();
        assert!(
            counted(&counters) >= 1,
            "{name}: fault not counted: {counters:?}"
        );
        assert!(store.frontier().get() <= 12, "{name}");
        assert!(
            store.recovered_entries() >= 1,
            "{name}: lost the whole log: {counters:?}"
        );
        let recovered = store.recovered_entries();

        // The store keeps working: new appends land after the prefix
        // and survive another restart.
        store.append_beacon(
            Round::new(100),
            BeaconValue::Signature(Signature::from_value(100)),
        );
        drop(store);
        let store = DurableStore::file(&dir, per_commit()).unwrap();
        assert_eq!(store.frontier().get(), 100, "{name}");
        assert_eq!(store.recovered_entries(), recovered + 1, "{name}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A corrupted checkpoint file is discarded (counted, not fatal); the
/// replica falls back to whatever the WAL still holds.
#[test]
fn corrupt_checkpoint_falls_back_to_wal() {
    let dir = scratch("corrupt_checkpoint");
    {
        let mut store = DurableStore::file(&dir, per_commit()).unwrap();
        populate(&mut store, 1..=10);
        store.install_checkpoint(checkpoint(6));
        assert_eq!(store.checkpoint().unwrap().round().get(), 6);
    }
    assert!(fault::corrupt_checkpoint(&dir).unwrap());

    let store = DurableStore::file(&dir, per_commit()).unwrap();
    let counters = store.storage_counters();
    assert_eq!(counters.checkpoint_corruptions, 1, "{counters:?}");
    assert!(store.checkpoint().is_none());
    // Compaction removed *whole sealed segments* below the checkpoint;
    // with one live segment everything is still in the WAL, so the
    // post-checkpoint rounds (7..=10) are certainly recovered.
    assert_eq!(store.frontier().get(), 10);
    assert!(store.recovered_entries() >= 4 * 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The page-cache fault model: writes that were never fsynced can be
/// lost, torn, or bit-flipped at crash time. Whatever the fault, the
/// synced prefix survives byte-for-byte.
#[test]
fn unsynced_tail_faults_keep_synced_prefix() {
    for fault in [
        DiskFault::LoseUnsynced,
        DiskFault::TornTail { keep: 13 },
        DiskFault::BitFlipTail { offset: 5 },
    ] {
        let dir = scratch("page_cache");
        let (fs, handle) = FaultFs::new();
        // A window/batch large enough that nothing syncs on its own:
        // only the explicit `flush` below makes bytes durable.
        let lazy = WalOptions {
            fsync: FsyncPolicy::Group {
                max_pending: usize::MAX,
                window: std::time::Duration::from_secs(3600),
            },
            ..WalOptions::default()
        };
        let backend = FileBackend::open_with_fs(&dir, lazy, Box::new(fs)).unwrap();
        let mut store = DurableStore::with_backend(Box::new(backend));
        populate(&mut store, 1..=8);
        store.flush().unwrap(); // rounds 1..=8 now durable
        populate(&mut store, 9..=16); // rounds 9..=16 in the page cache
        assert!(handle.unsynced_bytes() > 0);
        handle.crash(fault).unwrap();
        drop(store); // poisoned file: further writes are moot

        let store = DurableStore::file(&dir, per_commit()).unwrap();
        let frontier = store.frontier().get();
        assert!(
            (8..=16).contains(&frontier),
            "{fault:?}: synced prefix lost (frontier {frontier})"
        );
        // The synced prefix is complete: all four entry kinds of rounds
        // 1..=8 plus however much of the tail survived.
        assert!(
            store.recovered_entries() >= 8 * 4,
            "{fault:?}: only {} entries recovered",
            store.recovered_entries()
        );
        if fault == DiskFault::LoseUnsynced {
            assert_eq!(frontier, 8, "exactly the synced prefix");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Restart loop: a 4-node file-backed gossip cluster is power-cycled
/// K times (every node torn down and rebuilt from its `--data-dir`
/// equivalent). Each incarnation must recover at least its predecessor's
/// frontier — monotone, with zero restore re-verifications — and the
/// cluster must keep committing and agreeing.
#[test]
fn restart_loop_recovers_monotone_frontier_with_zero_reverification() {
    const N: usize = 4;
    const K: usize = 3;
    let dirs: Vec<PathBuf> = (0..N)
        .map(|i| scratch(&format!("restart_loop_{i}")))
        .collect();
    let mut prev_frontier = [0u64; N];
    let mut prev_committed = [0u64; N];

    for incarnation in 0..K {
        let overlay = Arc::new(Overlay::full_mesh(N));
        let cfg = GossipConfig {
            inline_threshold: 0,
            ..GossipConfig::default()
        };
        let idx = Cell::new(0usize);
        let dirs_ref = dirs.clone();
        let mut cluster = ClusterBuilder::new(N)
            .seed(77)
            .network(FixedDelay::new(SimDuration::from_millis(10)))
            .protocol_delays(SimDuration::from_millis(60), SimDuration::ZERO)
            .checkpoint_interval(8)
            .build_with(move |core| {
                let i = idx.get();
                idx.set(i + 1);
                let store = DurableStore::file(&dirs_ref[i], per_commit()).expect("open data dir");
                GossipNode::new(core.with_store(store), Arc::clone(&overlay), cfg)
            });
        cluster.run_for(SimDuration::from_secs(3));

        for i in 0..N {
            let core = cluster.sim.node(i).core();
            let rec = core.recovery_stats();
            assert_eq!(
                rec.restore_verifications, 0,
                "incarnation {incarnation}, node {i}: restore re-verified signatures"
            );
            if incarnation > 0 {
                assert_eq!(
                    rec.restarts, 1,
                    "incarnation {incarnation}, node {i}: no restore happened"
                );
                assert!(
                    core.last_recovered_round() >= prev_frontier[i],
                    "incarnation {incarnation}, node {i}: frontier went backwards \
                     (recovered {} < previous {})",
                    core.last_recovered_round(),
                    prev_frontier[i]
                );
            }
            let committed = cluster.committed_round(i);
            assert!(
                committed > prev_committed[i],
                "incarnation {incarnation}, node {i}: no progress past round {committed}"
            );
            prev_committed[i] = committed;
            let frontier = core.store().frontier().get();
            assert!(
                frontier >= prev_frontier[i],
                "incarnation {incarnation}, node {i}: durable frontier shrank"
            );
            prev_frontier[i] = frontier;
        }
        cluster.assert_safety();
    }
    // Three incarnations of ~25 rounds each actually accumulated.
    assert!(
        prev_frontier.iter().all(|&f| f > 40),
        "cluster barely progressed across restarts: {prev_frontier:?}"
    );
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Crash *during a reshare window*: the whole cluster is torn down
/// after the epoch boundary activated but **before the next
/// checkpoint**, so the `EpochTransition` handoff certificate exists
/// only as a WAL entry. Every node must recover into the correct epoch
/// purely from trusted replay — zero signature re-verifications — and
/// still be able to serve the cross-epoch certificate chain afterwards.
#[test]
fn crash_during_reshare_recovers_into_correct_epoch() {
    use icc_core::epoch::{EpochSchedule, EpochSpec};
    const N: usize = 5;
    const BOUNDARY: u64 = 20;
    let schedule = EpochSchedule::new(vec![
        EpochSpec::new(Round::GENESIS, vec![0, 1, 2, 3]),
        EpochSpec::new(Round::new(BOUNDARY), vec![0, 1, 2, 4]),
    ]);
    let dirs: Vec<PathBuf> = (0..N)
        .map(|i| scratch(&format!("reshare_crash_{i}")))
        .collect();

    let build = |dirs: &[PathBuf], schedule: &EpochSchedule| {
        let overlay = Arc::new(Overlay::full_mesh(N));
        let cfg = GossipConfig {
            inline_threshold: 0,
            ..GossipConfig::default()
        };
        let idx = Cell::new(0usize);
        let dirs_ref = dirs.to_vec();
        ClusterBuilder::new(N)
            .seed(31)
            .network(FixedDelay::new(SimDuration::from_millis(10)))
            .protocol_delays(SimDuration::from_millis(60), SimDuration::ZERO)
            // A cadence so sparse the first checkpoint would land far
            // past the boundary: the transition cert stays WAL-only.
            .checkpoint_interval(64)
            .with_epochs(schedule.clone())
            .build_with(move |core| {
                let i = idx.get();
                idx.set(i + 1);
                let store = DurableStore::file(&dirs_ref[i], per_commit()).expect("open data dir");
                GossipNode::new(core.with_store(store), Arc::clone(&overlay), cfg)
            })
    };

    // Incarnation 1: cross the boundary, then power off mid-window.
    let mut committed_before = [0u64; N];
    {
        let mut cluster = build(&dirs, &schedule);
        cluster.run_for(SimDuration::from_millis(1200));
        for (i, before) in committed_before.iter_mut().enumerate() {
            *before = cluster.committed_round(i);
            assert!(
                (BOUNDARY + 2..64).contains(before),
                "node {i} must crash inside the reshare-to-checkpoint window \
                 (committed {before})"
            );
            let cp = cluster.sim.node(i).core().store().checkpoint();
            assert!(
                cp.is_none(),
                "node {i}: a checkpoint landed before the crash; the test \
                 would not exercise WAL-only transition recovery"
            );
        }
        cluster.assert_safety();
    }

    // Incarnation 2: recover from disk alone.
    let mut cluster = build(&dirs, &schedule);
    for i in 0..N {
        let core = cluster.sim.node(i).core();
        let rec = core.recovery_stats();
        assert_eq!(rec.restarts, 1, "node {i} must have restored");
        assert_eq!(
            rec.restore_verifications, 0,
            "node {i}: restore re-verified signatures"
        );
        assert!(
            core.last_recovered_round() >= BOUNDARY,
            "node {i} recovered only to round {}",
            core.last_recovered_round()
        );
    }
    // The restored replicas resumed in epoch 1 and still serve the
    // certified handoff chain: the transition cert was replayed from
    // the WAL (no checkpoint ever carried it).
    let pkg = cluster
        .sim
        .node(0)
        .core()
        .build_catch_up_package(Round::GENESIS)
        .expect("restored replica holds a finalized chain");
    assert_eq!(
        pkg.transitions.iter().map(|t| t.epoch).collect::<Vec<_>>(),
        vec![1],
        "the epoch-1 handoff certificate must survive the crash"
    );

    // And the cluster keeps finalizing in the new epoch.
    cluster.run_for(SimDuration::from_secs(2));
    cluster.assert_safety();
    for (i, before) in committed_before.iter().enumerate() {
        assert!(
            cluster.committed_round(i) > before + 10,
            "node {i} stalled after the reshare crash"
        );
    }
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Group and periodic fsync policies batch their syncs but still
/// recover everything after a clean flush (the clean-shutdown contract
/// `replica` relies on for SIGTERM).
#[test]
fn lazy_fsync_policies_recover_after_flush() {
    for policy in [
        FsyncPolicy::Group {
            max_pending: 16,
            window: std::time::Duration::from_millis(50),
        },
        FsyncPolicy::Periodic {
            interval: std::time::Duration::from_millis(50),
        },
    ] {
        let dir = scratch("lazy_fsync");
        let opts = WalOptions {
            fsync: policy,
            ..WalOptions::default()
        };
        {
            let mut store = DurableStore::file(&dir, opts).unwrap();
            populate(&mut store, 1..=20);
            store.flush().unwrap();
        }
        let store = DurableStore::file(&dir, per_commit()).unwrap();
        assert_eq!(store.frontier().get(), 20, "{policy:?}");
        assert_eq!(store.recovered_entries(), 20 * 4, "{policy:?}");
        let counters = store.storage_counters();
        assert_eq!(counters.corrupt_records(), 0, "{policy:?}: {counters:?}");
        assert_eq!(counters.torn_tail_truncations, 0, "{policy:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A record too small to even hold its round prefix is malformed, ends
/// the trusted prefix, and is counted — never panics.
#[test]
fn short_record_ends_prefix() {
    let dir = scratch("short_record");
    {
        let (mut wal, _) = Wal::open(&dir, per_commit()).unwrap();
        wal.append(1, b"fine").unwrap();
    }
    // A validly framed record whose payload is shorter than the 8-byte
    // round prefix.
    let seg = fault::last_segment(&dir).unwrap().unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&encode_frame(b"abc"));
    std::fs::write(&seg, &bytes).unwrap();

    let (wal, recovered) = Wal::open(&dir, per_commit()).unwrap();
    assert_eq!(recovered.len(), 1);
    assert_eq!(wal.counters().malformed_records, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `HEADER_LEN` is part of the on-disk format contract this suite pins:
/// a record costs exactly `HEADER_LEN + 8 + payload` bytes.
#[test]
fn record_overhead_is_header_plus_round() {
    let dir = scratch("overhead");
    let payload = vec![0xabu8; 100];
    {
        let (mut wal, _) = Wal::open(&dir, per_commit()).unwrap();
        wal.append(5, &payload).unwrap();
        assert_eq!(
            wal.counters().bytes_appended,
            (HEADER_LEN + 8 + payload.len()) as u64
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
