//! Offline, API-compatible subset of `crossbeam` 0.8: the `channel`
//! module, layered over `std::sync::mpsc`. See `vendor/README.md`.

/// Multi-producer channels with the `crossbeam-channel` API surface the
/// workspace uses (`bounded`, `unbounded`, `recv_timeout`, iteration).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError};

    /// The sending half; unifies bounded and unbounded senders under
    /// one type like `crossbeam_channel::Sender`.
    pub enum Sender<T> {
        /// Unbounded variant.
        Unbounded(mpsc::Sender<T>),
        /// Bounded (blocking at capacity) variant.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking if a bounded channel is full. Errors
        /// only when the receiver has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(msg),
                Sender::Bounded(s) => s.send(msg),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message or disconnection.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterator over currently queued messages (non-blocking).
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }

        /// Blocking iterator until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }

    /// A bounded FIFO channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_iteration() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_and_timeout() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded::<u64>();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        h.join().unwrap();
        assert_eq!(rx.try_iter().sum::<u64>(), 4950);
    }
}
