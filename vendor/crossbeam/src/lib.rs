//! Offline, API-compatible subset of `crossbeam` 0.8: the `channel`
//! module layered over `std::sync::mpsc`, and the `thread` module's
//! scoped threads layered over `std::thread::scope` (Rust ≥ 1.63).
//! See `vendor/README.md`.

/// Multi-producer channels with the `crossbeam-channel` API surface the
/// workspace uses (`bounded`, `unbounded`, `recv_timeout`, iteration).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TrySendError};

    /// The sending half; unifies bounded and unbounded senders under
    /// one type like `crossbeam_channel::Sender`.
    pub enum Sender<T> {
        /// Unbounded variant.
        Unbounded(mpsc::Sender<T>),
        /// Bounded (blocking at capacity) variant.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking if a bounded channel is full. Errors
        /// only when the receiver has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(msg),
                Sender::Bounded(s) => s.send(msg),
            }
        }

        /// Non-blocking send: on a bounded channel at capacity this
        /// returns [`TrySendError::Full`] instead of blocking (the
        /// backpressure primitive `icc-net`'s per-peer writer queues
        /// use). Unbounded channels never report `Full`.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match self {
                Sender::Unbounded(s) => s
                    .send(msg)
                    .map_err(|SendError(m)| TrySendError::Disconnected(m)),
                Sender::Bounded(s) => s.try_send(msg),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message or disconnection.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterator over currently queued messages (non-blocking).
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }

        /// Blocking iterator until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }

    /// A bounded FIFO channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }
}

/// Scoped threads with the `crossbeam::thread` API surface the
/// workspace uses: `scope(|s| ...)` returning `Result`, and
/// `s.spawn(|_| ...)` handing the scope back into the closure so
/// spawned threads can spawn more. Backed by `std::thread::scope`,
/// which already guarantees every spawned thread is joined before
/// `scope` returns — so borrowing from the enclosing stack frame is
/// safe, exactly as in real crossbeam.
pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// What a panicked child thread leaves behind (crossbeam's alias).
    pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle to a scoped thread; joined implicitly at scope exit if
    /// not joined explicitly.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if the
        /// thread panicked).
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    /// The spawning surface passed to `scope` and to every spawned
    /// closure. `Copy` so it can be captured by value into children.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure
        /// receives the scope so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope handle; all threads spawned through it are
    /// joined before this returns. `std::thread::scope` propagates
    /// child panics (after joining everything), so the `Err` arm of the
    /// crossbeam signature is vestigial here — kept for API parity.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_iteration() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_and_timeout() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(
            tx.try_send(3),
            Err(TrySendError::Full(3) | TrySendError::Disconnected(3))
        ));
        let (utx, urx) = unbounded::<u32>();
        utx.try_send(7).unwrap();
        assert_eq!(urx.recv(), Ok(7));
        drop(urx);
        assert!(matches!(
            utx.try_send(8),
            Err(TrySendError::Disconnected(8))
        ));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded::<u64>();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        h.join().unwrap();
        assert_eq!(rx.try_iter().sum::<u64>(), 4950);
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(|_| chunk.iter().sum::<u64>()));
            }
            for h in handles {
                sums.lock().unwrap().push(h.join().unwrap());
            }
        })
        .unwrap();
        assert_eq!(sums.into_inner().unwrap(), vec![3, 7]);
    }

    #[test]
    fn scoped_threads_can_spawn_siblings() {
        let flag = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    flag.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                flag.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .unwrap();
        assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}
