//! Offline, API-compatible subset of `criterion` 0.5.
//!
//! Measures the median wall-clock time of each benchmark over a fixed
//! number of samples and prints one line per benchmark — no plots, no
//! statistics beyond median and throughput. See `vendor/README.md`.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, collecting `sample_size` samples sized to fit
    /// roughly within the configured measurement time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how long does one iteration take?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(Duration::from_millis(1));
        let per_sample = budget / self.sample_size.max(1) as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// Per-group benchmark runner.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        let tp = self.throughput;
        self.criterion.run_one(&full, tp, |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let tp = self.throughput;
        self.criterion.run_one(&full, tp, |b| f(b, input));
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (calibration already warms; kept for
    /// API compatibility).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(id, None, |b| f(b));
        self
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        samples.sort_unstable();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let tp = match throughput {
            Some(Throughput::Bytes(bytes)) if median > Duration::ZERO => {
                let mbps = bytes as f64 / median.as_secs_f64() / 1e6;
                format!("  {mbps:.1} MB/s")
            }
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let eps = n as f64 / median.as_secs_f64();
                format!("  {eps:.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{id:<50} median {median:>12.3?}{tp}");
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
