//! Offline, API-compatible subset of `bytes` 1.x: the [`Bytes`]
//! cheap-clone byte container. See `vendor/README.md`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is a refcount
/// bump, not a copy.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
