//! Offline, API-compatible subset of `proptest` 1.x.
//!
//! Implements the surface this workspace uses: the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros,
//! the [`Strategy`](strategy::Strategy) trait with `prop_map`, range
//! and [`any`](arbitrary::any) strategies, [`Just`](strategy::Just),
//! [`collection::vec`] / [`collection::btree_set`], and
//! [`ProptestConfig`](test_runner::Config).
//!
//! Unlike upstream, cases are generated **deterministically** (the RNG
//! seed is derived from the case index), so failures reproduce without
//! a regression file; there is no shrinking — the failing inputs are
//! printed instead. See `vendor/README.md`.

/// Test-runner configuration and RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Mirror of `proptest::test_runner::Config` (the fields used).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// The deterministic case RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for one case, derived from the case index.
        pub fn deterministic(case: u64) -> TestRng {
            TestRng {
                inner: StdRng::seed_from_u64(case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5EED),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of `options`, sampled uniformly.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, Standard};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary_value(rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size specifications accepted by [`vec`] / [`btree_set`].
    pub trait IntoSizeRange {
        /// The `[lo, hi)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.max(self.start + 1))
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..self.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` strategy of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// Strategy for `BTreeSet<S::Value>`; like upstream, the target
    /// size is best-effort when the element domain is small.
    pub struct BTreeSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.lo..self.hi);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A `BTreeSet` strategy of `element` values with size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let (lo, hi) = size.bounds();
        BTreeSetStrategy { element, lo, hi }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(case);
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<$crate::strategy::BoxedStrategy<_>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Asserts a condition inside a property (plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_parity() -> impl Strategy<Value = u64> {
        prop_oneof![Just(0u64), Just(2), (2u64..100).prop_map(|v| v * 2)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in 0u32..=4, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_and_map(v in arb_parity()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn collections_sized(
            xs in crate::collection::vec(any::<u8>(), 2..10),
            set in crate::collection::btree_set(0u32..1000, 0..8),
        ) {
            prop_assert!((2..10).contains(&xs.len()));
            prop_assert!(set.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 5..6);
        let mut r1 = crate::test_runner::TestRng::deterministic(9);
        let mut r2 = crate::test_runner::TestRng::deterministic(9);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }
}
