//! Offline, API-compatible subset of `rand` 0.8.
//!
//! Implements exactly the surface this workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64 — deterministic, not cryptographic), and
//! [`seq::SliceRandom::shuffle`]. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Error type for fallible generation (never produced by the shimmed
/// generators; present for `RngCore` API compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Marker for cryptographically secure generators.
pub trait CryptoRng {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Fallible byte fill (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection-free widening multiply.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ (not the
    /// upstream ChaCha12 — same API, different streams, deterministic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_from(rng);
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_spread() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let unique: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(unique.len(), xs.len());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn fill_and_shuffle() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }
}
